"""Screen-breach events and schedules.

"Unobserved events (e.g. bird strike, foraging fauna, damage concomitant
with theft, etc.) can cause screen breaches that must be detected." A
:class:`BreachEvent` names the damaged panel and when the damage occurred;
the fabric uses the schedule both to perturb the *measured* interior
airflow (ground truth) and, in what-if mode, to build breached CFD cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class BreachEvent:
    """One breach: which screen panel, when, and how big.

    Attributes
    ----------
    panel_index:
        Index into the structure's screen panel list (see
        :func:`repro.cfd.boundary.cups_screen_walls`).
    at_time_s:
        Simulated time of the damage.
    severity:
        Fraction of the panel's resistance lost, in (0, 1]; 1 = the panel
        admits free flow over the damaged patch.
    cause:
        Label for reporting ("bird-strike", "fauna", "theft"...).
    """

    panel_index: int
    at_time_s: float
    severity: float = 1.0
    cause: str = "unknown"

    def __post_init__(self) -> None:
        if self.panel_index < 0:
            raise ValueError(f"negative panel index: {self.panel_index}")
        if self.at_time_s < 0:
            raise ValueError(f"negative time: {self.at_time_s}")
        if not 0.0 < self.severity <= 1.0:
            raise ValueError(f"severity out of (0,1]: {self.severity}")


class BreachSchedule:
    """The set of breaches over a scenario, queryable by time."""

    def __init__(self, events: Optional[list[BreachEvent]] = None) -> None:
        self._events = sorted(events or [], key=lambda e: e.at_time_s)

    def add(self, event: BreachEvent) -> None:
        self._events.append(event)
        self._events.sort(key=lambda e: e.at_time_s)

    def active_at(self, time_s: float) -> list[BreachEvent]:
        """Breaches that have occurred by ``time_s`` (unrepaired)."""
        return [e for e in self._events if e.at_time_s <= time_s]

    def breached_panels_at(self, time_s: float) -> set[int]:
        return {e.panel_index for e in self.active_at(time_s)}

    def first_breach_time(self) -> Optional[float]:
        return self._events[0].at_time_s if self._events else None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)
