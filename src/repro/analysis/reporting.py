"""Paper-vs-measured comparison tables for the benchmark harness.

Every benchmark regenerating a paper figure/table prints one of these so
the reproduction record (EXPERIMENTS.md) can be read straight off the
bench output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ComparisonRow:
    """One measured quantity next to its paper anchor."""

    label: str
    measured: float
    paper: Optional[float] = None
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper is None or self.paper == 0:
            return None
        return self.measured / self.paper

    def format(self, label_width: int) -> str:
        parts = [
            f"{self.label:<{label_width}}",
            f"{self.measured:10.2f}{(' ' + self.unit) if self.unit else '':<6}",
        ]
        if self.paper is not None:
            parts.append(f"paper {self.paper:10.2f}")
            ratio = self.ratio
            if ratio is not None:
                parts.append(f"ratio {ratio:5.2f}x")
        return "  ".join(parts)


class ComparisonTable:
    """A titled list of comparison rows with a uniform text rendering."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.rows: list[ComparisonRow] = []

    def add(
        self,
        label: str,
        measured: float,
        paper: Optional[float] = None,
        unit: str = "",
    ) -> ComparisonRow:
        row = ComparisonRow(label=label, measured=measured, paper=paper, unit=unit)
        self.rows.append(row)
        return row

    def render(self) -> str:
        if not self.rows:
            return f"== {self.title} ==\n(no rows)"
        width = max(len(r.label) for r in self.rows)
        lines = [f"== {self.title} =="]
        lines += [r.format(width) for r in self.rows]
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console side effect
        print("\n" + self.render())

    def max_abs_log_ratio(self) -> float:
        """Worst-case |log(measured/paper)| across anchored rows -- a
        scale-free 'how far off are we' figure for shape assertions."""
        import math

        ratios = [r.ratio for r in self.rows if r.ratio is not None and r.ratio > 0]
        if not ratios:
            return 0.0
        return max(abs(math.log(v)) for v in ratios)
