"""Sample statistics for benchmark outputs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class SampleSummary:
    """Mean/SD/extremes of one measurement series."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / np.sqrt(self.n) if self.n > 1 else float("nan")

    def two_sigma_band(self) -> tuple[float, float]:
        """The +/- 2 SD whiskers of the paper's Figure 7."""
        return (self.mean - 2 * self.std, self.mean + 2 * self.std)


def summarize(samples) -> SampleSummary:
    """Summarize a 1-D series."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"need a non-empty 1-D series, got shape {arr.shape}")
    minimum = float(arr.min())
    maximum = float(arr.max())
    # Pairwise summation can put the mean an ulp outside [min, max] (e.g.
    # three identical values); clamp so min <= mean <= max always holds.
    mean = min(max(float(arr.mean()), minimum), maximum)
    return SampleSummary(
        n=int(arr.size),
        mean=mean,
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=minimum,
        maximum=maximum,
    )


def confidence_interval(samples, level: float = 0.95) -> tuple[float, float]:
    """Two-sided t-interval for the mean."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"level out of (0,1): {level}")
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size < 2:
        raise ValueError("need at least 2 samples for an interval")
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    if sem == 0.0:
        return (mean, mean)
    half = float(sps.t.ppf(0.5 + level / 2, df=arr.size - 1)) * sem
    return (mean - half, mean + half)
