"""Analysis utilities: sample statistics and paper-vs-measured reporting."""

from repro.analysis.stats import SampleSummary, confidence_interval, summarize
from repro.analysis.reporting import ComparisonRow, ComparisonTable
from repro.analysis.export import read_series_csv, write_series_csv

__all__ = [
    "SampleSummary",
    "summarize",
    "confidence_interval",
    "ComparisonRow",
    "ComparisonTable",
    "write_series_csv",
    "read_series_csv",
]
