"""Figure-data export.

The paper's artifact ships raw iperf3 JSON plus CSVs that its plotting
notebook turns into the figures; our benchmarks do the analogue with
:func:`write_series_csv`, so anyone can regenerate the plots with their
tool of choice (`benchmarks/_artifacts/*.csv` after a benchmark run).
"""

from __future__ import annotations

import csv
import os
from typing import Any, Sequence


def write_series_csv(
    path: str,
    header: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Write one figure's data series as CSV; returns the path.

    Validates that every row matches the header width -- a malformed
    figure dump is worse than none.
    """
    if not header:
        raise ValueError("empty header")
    width = len(header)
    for n, row in enumerate(rows):
        if len(row) != width:
            raise ValueError(
                f"row {n} has {len(row)} fields, header has {width}"
            )
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def read_series_csv(path: str) -> tuple[list[str], list[list[str]]]:
    """Read back a series CSV (header, rows)."""
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        return header, [row for row in reader]
