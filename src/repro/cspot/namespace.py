"""Namespaces: the collection of WooF logs a node hosts.

A CSPOT namespace maps log names to WooFs, backed by a storage factory so
that every log a node creates survives the node's process. The namespace
object itself is the "disk": a revived node re-opens the same namespace.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cspot.log import WooF
from repro.cspot.storage import MemoryStorage, StorageBackend


class Namespace:
    """A named collection of persistent logs.

    Parameters
    ----------
    name:
        Namespace identifier (the testbed uses per-site namespaces such as
        ``"unl"``, ``"ucsb"``, ``"nd"``).
    storage_factory:
        Called with a log name to create that log's backend; default
        :class:`MemoryStorage`. Use a :class:`FileStorage`-producing factory
        for on-disk namespaces.
    """

    def __init__(
        self,
        name: str,
        storage_factory: Optional[Callable[[str], StorageBackend]] = None,
    ) -> None:
        self.name = name
        self._storage_factory = storage_factory or (lambda _name: MemoryStorage())
        self._logs: dict[str, WooF] = {}
        self._storages: dict[str, StorageBackend] = {}

    def create(self, log_name: str, element_size: int, history_size: int = 1024) -> WooF:
        """Create a new log; error if the name exists."""
        if log_name in self._logs:
            raise ValueError(f"namespace {self.name!r}: log {log_name!r} exists")
        storage = self._storage_factory(log_name)
        log = WooF(log_name, element_size, history_size, storage=storage)
        self._logs[log_name] = log
        self._storages[log_name] = storage
        return log

    def get(self, log_name: str) -> WooF:
        try:
            return self._logs[log_name]
        except KeyError:
            raise KeyError(
                f"namespace {self.name!r}: no log {log_name!r} "
                f"(have {sorted(self._logs)})"
            ) from None

    def __contains__(self, log_name: str) -> bool:
        return log_name in self._logs

    def names(self) -> list[str]:
        return sorted(self._logs)

    def drop_processes(self) -> None:
        """Simulate process death: forget open log objects, keep storage."""
        self._logs.clear()

    def reopen(self) -> None:
        """Recover all logs from their storage backends after process death."""
        for log_name, storage in self._storages.items():
            if log_name not in self._logs:
                self._logs[log_name] = WooF.recover(log_name, storage)
