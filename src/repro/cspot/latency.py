"""CSPOT message-latency measurement (Table 1 harness).

The paper's procedure: "We measure the time to deliver 1 1KB message
payload, 30 times back-to-back. (The first of 30 measurements is discarded
because of the initial connection start-up penalty.) Further, each message
is acknowledged with a sequence number after the data has been appended to
a log in persistent storage."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.cspot.node import CSPOTNode
from repro.cspot.transport import RemoteAppendClient, Transport
from repro.simkernel import Engine

#: The measured payload size.
PAYLOAD_BYTES = 1024
#: Connection start-up penalty applied to the first message (ZeroMQ socket
#: establishment + TCP/QUIC handshakes through the 5G data plane).
STARTUP_PENALTY_S = 0.250


@dataclass(frozen=True)
class LatencyProbe:
    """Result of a latency measurement run."""

    path_name: str
    samples_ms: np.ndarray  # start-up-discarded samples

    @property
    def mean_ms(self) -> float:
        return float(np.mean(self.samples_ms))

    @property
    def std_ms(self) -> float:
        return float(np.std(self.samples_ms, ddof=1))

    def row(self) -> str:
        """A Table 1-style row."""
        return f"{self.path_name:28s} {self.mean_ms:8.0f} {self.std_ms:10.1f}"


def measure_path_latency(
    engine: Engine,
    transport: Transport,
    client: CSPOTNode,
    server: CSPOTNode,
    log_name: str,
    n_messages: int = 30,
    discard_first: bool = True,
    use_size_cache: bool = False,
) -> LatencyProbe:
    """Run the paper's back-to-back 1 KB append measurement.

    Runs the simulation forward; returns per-message latencies in ms with
    the first sample discarded (the start-up penalty).
    """
    if n_messages < 2:
        raise ValueError("need at least 2 messages (the first is discarded)")
    appender = RemoteAppendClient(
        transport, client, server, log_name, use_size_cache=use_size_cache
    )
    payload = bytes(PAYLOAD_BYTES)
    latencies: list[float] = []

    def body() -> Generator:
        for i in range(n_messages):
            start = engine.now
            if i == 0:
                yield engine.timeout(STARTUP_PENALTY_S)
            yield appender.append(payload)
            latencies.append((engine.now - start) * 1e3)

    proc = engine.process(body(), name=f"latency-probe:{client.name}->{server.name}")
    engine.run(until=proc)
    samples = np.asarray(latencies[1:] if discard_first else latencies)
    path = transport.path(client.name, server.name)
    return LatencyProbe(path_name=path.name, samples_ms=samples)
