"""Ordered log replication between CSPOT nodes.

xGFabric moves data between sites by appending to remote logs; when a whole
log should exist at two sites (telemetry mirrored from the UCSB repository
to an HPC head node, say), the :class:`LogReplicator` pumps entries from a
source log to a destination node *in order*, exactly once, resuming across
partitions, power loss on either side, and its own restarts (the replica's
length is the only cursor state, and it lives in the destination log
itself -- restart recovery re-reads it).

Semantics:

* one entry in flight at a time (order preservation);
* each entry ships via the reliable append client (retry + dedup);
* the pump wakes on every source append and drains the backlog;
* lag is observable (:meth:`lag`), for monitoring.
"""

from __future__ import annotations

from typing import Generator

from repro.cspot.errors import AppendError, NodeDownError
from repro.cspot.node import CSPOTNode
from repro.cspot.transport import RemoteAppendClient, Transport
from repro.simkernel import Engine, Store


class LogReplicator:
    """Pumps ``src_node:log_name`` into ``dst_node:log_name`` in order.

    Parameters
    ----------
    transport:
        Transport with a path between the two nodes.
    src_node / dst_node:
        Source (hosting the authoritative log) and destination.
    log_name:
        Log to replicate; must exist at the source. The destination log is
        created with matching geometry if absent.
    poll_interval_s:
        Fallback scan cadence for appends missed while the source was
        down (handlers die with the process; the pump must not).
    """

    def __init__(
        self,
        transport: Transport,
        src_node: CSPOTNode,
        dst_node: CSPOTNode,
        log_name: str,
        poll_interval_s: float = 60.0,
    ) -> None:
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        self.transport = transport
        self.engine: Engine = transport.engine
        self.src_node = src_node
        self.dst_node = dst_node
        self.log_name = log_name
        self.poll_interval_s = poll_interval_s
        src_log = src_node.namespace.get(log_name)
        if log_name not in dst_node.namespace:
            dst_node.namespace.create(
                log_name,
                element_size=src_log.element_size,
                history_size=src_log.history_size,
            )
        self._appender = RemoteAppendClient(
            transport, src_node, dst_node, log_name, retry_backoff_s=1.0
        )
        self._wakeups: Store = Store(self.engine)
        self._running = False
        self._stop_requested = False
        self.entries_shipped = 0
        # Replication cursor: highest source seqno applied at the
        # destination. Seeded from the destination log (restart recovery);
        # maintained in memory thereafter so a powered-off destination
        # doesn't block progress accounting (the reliable appender already
        # waits out destination outages).
        self._cursor = dst_node.namespace.get(log_name).last_seqno
        # Wake on local appends (cheap); polling covers everything else.
        src_log.subscribe(lambda log, entry: self._wakeups.put(entry.seqno))

    # -- state ------------------------------------------------------------------

    def shipped_through(self) -> int:
        """Highest source seqno known to be applied at the destination."""
        return self._cursor

    def lag(self) -> int:
        """Source entries not yet replicated (0 while the source is down:
        its process is gone, but its log -- and the backlog -- persists
        and is picked up on revival)."""
        try:
            src = self.src_node.get_log(self.log_name)
        except NodeDownError:
            return 0
        return max(0, src.last_seqno - self._cursor)

    # -- pump --------------------------------------------------------------------

    def stop(self) -> None:
        """Ask the pump to exit at its next wakeup. Only one replicator
        should pump a given (source, destination, log) at a time -- two
        pumps have distinct dedup identities and would double-ship."""
        self._stop_requested = True

    def start(self) -> None:
        """Start the pump process (idempotent)."""
        if self._running:
            return
        self._running = True
        self._stop_requested = False
        self.engine.process(
            self._pump(), name=f"replicate:{self.log_name}"
            f":{self.src_node.name}->{self.dst_node.name}"
        )

    def _pump(self) -> Generator:
        while not self._stop_requested:
            if self.lag() == 0:
                # Sleep until an append or the poll timer, whichever first.
                wake = self._wakeups.get()
                timer = self.engine.timeout(self.poll_interval_s)
                yield self.engine.any_of([wake, timer])
                continue
            try:
                src = self.src_node.get_log(self.log_name)
                next_seqno = self._cursor + 1
                if next_seqno < src.earliest_seqno:
                    raise AppendError(
                        f"replication of {self.log_name!r} fell behind the "
                        f"source's history window (need seqno {next_seqno}, "
                        f"earliest resident {src.earliest_seqno})"
                    )
                entry = src.get(next_seqno)
            except NodeDownError:
                yield self.engine.timeout(self.poll_interval_s)
                continue
            if self._stop_requested:
                break
            yield self._appender.append(entry.payload)
            self._cursor = next_seqno
            self.entries_shipped += 1
        self._running = False

    def drained(self, timeout_check_s: float = 1.0):
        """An event that triggers once the replica has caught up."""
        ev = self.engine.event()

        def check() -> Generator:
            while self.lag() > 0:
                yield self.engine.timeout(timeout_check_s)
            ev.succeed(self.shipped_through())

        self.engine.process(check(), name=f"drain-check:{self.log_name}")
        return ev
