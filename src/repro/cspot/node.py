"""A CSPOT node: namespace + handlers + lifecycle.

Handlers are the only computational mechanism: a handler is bound to one log
and fired once per append to that log. Handlers run asynchronously (as
engine events) and can never block waiting for another handler -- "a CSPOT
program can always make progress". Multi-event synchronization is expressed
by handler code scanning logs (:meth:`WooF.scan`).

Lifecycle: :meth:`power_off` kills the process (handlers stop, in-flight
server work dies) but storage survives; :meth:`power_on` recovers every log
from storage and re-arms the registered handlers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cspot.dedup import DedupTable
from repro.cspot.errors import NodeDownError
from repro.cspot.log import LogEntry, WooF
from repro.cspot.namespace import Namespace
from repro.simkernel import Engine

#: A handler receives (node, log, entry) and returns None. Appending to
#: other logs from inside a handler is allowed (and is how Laminar chains
#: computation).
Handler = Callable[["CSPOTNode", WooF, LogEntry], None]


@dataclass
class _HandlerBinding:
    log_name: str
    fn: Handler
    fire_delay_s: float


class CSPOTNode:
    """One CSPOT runtime instance (a Raspberry Pi, an edge server, a head
    node of an HPC cluster -- the same stack runs at all scales).

    Parameters
    ----------
    engine:
        The shared simulation engine.
    name:
        Node name; also used as the default namespace name.
    namespace:
        Existing namespace to host (e.g. when reviving a node); default a
        fresh memory-backed one.
    handler_delay_s:
        Default scheduling delay between an append and its handler's
        execution (models the event-dispatch cost).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        namespace: Optional[Namespace] = None,
        handler_delay_s: float = 0.001,
    ) -> None:
        self.engine = engine
        self.name = name
        self.namespace = namespace if namespace is not None else Namespace(name)
        self.handler_delay_s = handler_delay_s
        self.dedup = DedupTable()
        self.alive = True
        self._bindings: list[_HandlerBinding] = []
        self._subscribed: set[str] = set()
        self.handler_invocations = 0
        #: (simulated time, log name, exception) per failed handler run.
        self.handler_errors: list[tuple[float, str, BaseException]] = []
        # Re-arm subscriptions for logs that already exist in the namespace.
        for log_name in self.namespace.names():
            self._arm(log_name)

    # -- log management ------------------------------------------------------

    def create_log(self, log_name: str, element_size: int, history_size: int = 1024) -> WooF:
        self._require_alive()
        log = self.namespace.create(log_name, element_size, history_size)
        self._arm(log_name)
        return log

    def get_log(self, log_name: str) -> WooF:
        self._require_alive()
        return self.namespace.get(log_name)

    def local_append(self, log_name: str, payload: bytes) -> int:
        """Append from code running on this node (no network involved)."""
        self._require_alive()
        return self.get_log(log_name).append(payload, now=self.engine.now)

    # -- handlers -------------------------------------------------------------

    def register_handler(
        self, log_name: str, fn: Handler, fire_delay_s: Optional[float] = None
    ) -> None:
        """Fire ``fn`` once per append to ``log_name``.

        Multiple handlers may watch the same log; each fires independently.
        """
        self._require_alive()
        if log_name not in self.namespace:
            raise KeyError(f"node {self.name!r}: no log {log_name!r} to handle")
        delay = self.handler_delay_s if fire_delay_s is None else fire_delay_s
        self._bindings.append(_HandlerBinding(log_name, fn, delay))

    def _arm(self, log_name: str) -> None:
        if log_name in self._subscribed:
            return
        self._subscribed.add(log_name)
        self.namespace.get(log_name).subscribe(self._on_append)

    def _on_append(self, log: WooF, entry: LogEntry) -> None:
        if not self.alive:
            return
        for binding in self._bindings:
            if binding.log_name != log.name:
                continue
            self._schedule_handler(binding, log, entry)

    def _schedule_handler(
        self, binding: _HandlerBinding, log: WooF, entry: LogEntry
    ) -> None:
        def _fire(_event) -> None:
            if not self.alive:
                return  # the process died before the handler ran
            self.handler_invocations += 1
            try:
                binding.fn(self, log, entry)
            except Exception as exc:
                # A faulty handler crashes its own invocation, never the
                # runtime: "a CSPOT program can always make progress".
                self.handler_errors.append((self.engine.now, log.name, exc))

        self.engine.timeout(binding.fire_delay_s).add_callback(_fire)

    # -- lifecycle ----------------------------------------------------------------

    def power_off(self) -> None:
        """Kill the node process. Storage (the namespace) survives."""
        self.alive = False
        self.namespace.drop_processes()

    def power_on(self) -> None:
        """Revive the node: recover logs from storage, re-arm handlers."""
        if self.alive:
            return
        self.namespace.reopen()
        self._subscribed.clear()
        for log_name in self.namespace.names():
            self._arm(log_name)
        self.alive = True

    def _require_alive(self) -> None:
        if not self.alive:
            raise NodeDownError(f"node {self.name!r} is powered off")
