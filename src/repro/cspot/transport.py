"""CSPOT's network transport: the two-round-trip append protocol.

The paper (section 4.2): "to append data to a remote CSPOT log requires the
client to request the size of a log element ... from the site where the log
is hosted before the data is actually sent". So a remote append costs

    RTT(size fetch) + RTT(payload + ack) + server append time.

The size-caching optimization "effectively halves the message latency, but
causes the append to fail if the log element size is changed on the server
side without a client cache update" -- both the optimization and its
staleness failure are implemented here.

Latency calibration (Table 1, 1 KB payloads):

=========================  ==============  =========
Path                       Paper avg (ms)  Paper SD
=========================  ==============  =========
UNL->UCSB (5G + Internet)  101             17
UNL->UCSB (Internet)        17             0.8
UCSB->ND  (Internet)        92             1
=========================  ==============  =========

With the two-RTT protocol, avg = 4 x one-way + t_append: the Internet path
UNL<->UCSB has ~4 ms one-way; adding the private 5G hop contributes ~21 ms
one-way (radio frame alignment + core UPF), and the UCSB<->ND Internet path
~22.8 ms one-way.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cspot.boundary import FabricEnvelope, ShardBoundary

from repro.cspot.errors import (
    AckLostError,
    AppendError,
    ElementSizeError,
    NodeDownError,
    PartitionedError,
)
from repro.cspot.faults import FaultInjector
from repro.cspot.node import CSPOTNode
from repro.obs.trace import NULL_TRACER, Tracer
from repro.simkernel import Engine, Process
from repro.simkernel.streams import CSPOT_TRANSPORT, cspot_fault_stream


def lognormal_delay_s(
    one_way_ms: float, jitter_ms: float, rng: np.random.Generator
) -> float:
    """One latency-leg draw: lognormal with the given mean/SD (in ms).

    Shared by :class:`NetworkPath` and the shard boundary's pure
    :class:`~repro.cspot.boundary.CrossShardLink`, so the two paths stamp
    byte-identical draws from identical generator state.
    """
    if jitter_ms == 0.0:
        return one_way_ms / 1e3
    mean, sd = one_way_ms, jitter_ms
    # Lognormal with the requested mean and SD.
    sigma2 = np.log(1.0 + (sd / mean) ** 2)
    mu = np.log(mean) - 0.5 * sigma2
    return float(rng.lognormal(mu, np.sqrt(sigma2))) / 1e3


@dataclass
class NetworkPath:
    """A directed network path with stochastic one-way latency.

    Attributes
    ----------
    name:
        e.g. ``"unl->ucsb (5g+internet)"``.
    one_way_ms:
        Mean one-way latency in milliseconds.
    jitter_ms:
        Standard deviation of the per-leg latency draw (lognormal, so the
        tail is one-sided like real networks).
    faults:
        Fault injector for this path.
    """

    name: str
    one_way_ms: float
    jitter_ms: float = 0.0
    faults: FaultInjector = field(default_factory=FaultInjector)

    def __post_init__(self) -> None:
        if self.one_way_ms <= 0:
            raise ValueError(f"one_way_ms must be positive: {self.one_way_ms}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be non-negative: {self.jitter_ms}")

    def delay_s(self, rng: np.random.Generator) -> float:
        """Draw one leg's latency in seconds."""
        return lognormal_delay_s(self.one_way_ms, self.jitter_ms, rng)


#: Server-side cost of the durable append itself (storage write + seqno).
DEFAULT_APPEND_COST_S = 0.001


class Transport:
    """Message transport between CSPOT nodes over named paths."""

    def __init__(self, engine: Engine, tracer: Optional[Tracer] = None) -> None:
        self.engine = engine
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._paths: dict[tuple[str, str], NetworkPath] = {}
        self._rng = engine.rng(CSPOT_TRANSPORT)
        self._boundary: Optional["ShardBoundary"] = None

    # -- shard boundary seam ----------------------------------------------------

    def bind_boundary(self, boundary: "ShardBoundary") -> None:
        """Attach the shard boundary for appends that leave this engine.

        In a sharded fabric run (:mod:`repro.parallel`) each shard's
        transport only knows the CSPOT nodes its shard owns; appends to
        any other node are exported through the boundary as
        :class:`~repro.cspot.boundary.FabricEnvelope` messages instead of
        executing locally. Unsharded fabrics never bind one.
        """
        if self._boundary is not None:
            raise AppendError("a shard boundary is already bound")
        self._boundary = boundary

    def export_append(
        self,
        src_cell: int,
        dst_cell: int,
        log_name: str,
        payload: bytes,
        rng: np.random.Generator,
    ) -> "FabricEnvelope":
        """Export an append whose destination node lives on another shard.

        Latency is stamped from ``rng`` (the *sender's* per-cell stream,
        so the draw is worker-count-invariant); delivery happens at the
        coordinator's next window barrier, never sooner.
        """
        if self._boundary is None:
            raise AppendError(
                f"append to cell {dst_cell} crosses the shard boundary but "
                "no boundary is bound (Transport.bind_boundary)"
            )
        return self._boundary.export(
            send_t=self.engine.now,
            src_cell=src_cell,
            dst_cell=dst_cell,
            log=log_name,
            payload=payload,
            rng=rng,
        )

    def connect(self, src: str, dst: str, path: NetworkPath, bidirectional: bool = True) -> None:
        """Register a path between two node names.

        Binds the path's fault injector to a named registry stream
        (``cspot.faults.<src>-<dst>``) unless the injector was built with
        an explicit generator, so ack-loss draws follow the master seed.
        """
        path.faults.bind_rng(self.engine.rng(cspot_fault_stream(src, dst)))
        self._paths[(src, dst)] = path
        if bidirectional:
            self._paths[(dst, src)] = path

    def path(self, src: str, dst: str) -> NetworkPath:
        try:
            return self._paths[(src, dst)]
        except KeyError:
            raise AppendError(f"no network path {src} -> {dst}") from None

    # -- protocol -------------------------------------------------------------

    def remote_append(
        self,
        client: CSPOTNode,
        server: CSPOTNode,
        log_name: str,
        payload: bytes,
        client_id: str,
        op_id: str,
        cached_element_size: Optional[int] = None,
        append_cost_s: float = DEFAULT_APPEND_COST_S,
    ) -> Process:
        """Start a remote append; the returned process yields the seqno.

        Without ``cached_element_size`` the protocol spends an extra round
        trip fetching the element size (CSPOT's reliability-first default).
        With it, the size fetch is skipped -- but if the cache is stale the
        server rejects the frame with :class:`ElementSizeError`.
        """
        body = self._append_body(
            client, server, log_name, payload, client_id, op_id,
            cached_element_size, append_cost_s,
        )
        if self.tracer.enabled:
            # The span wrapper lives outside `_append_body` so the untraced
            # protocol body stays byte-for-byte free of instrumentation
            # (benchmarks/test_obs_overhead.py times it directly).
            body = self._traced_append(
                body, client, server, log_name, payload, cached_element_size
            )
        return self.engine.process(
            body,
            name=f"append:{client.name}->{server.name}:{log_name}",
        )

    def _traced_append(
        self,
        body: Generator,
        client: CSPOTNode,
        server: CSPOTNode,
        log_name: str,
        payload: bytes,
        cached_element_size: Optional[int],
    ) -> Generator:
        """Wrap an append body in a ``cspot.append`` span (enabled mode only)."""
        tr = self.tracer
        span = tr.span(
            "cspot.append",
            category="cspot",
            attrs={
                "src": client.name,
                "dst": server.name,
                "log": log_name,
                "bytes": len(payload),
                "size_cached": cached_element_size is not None,
            },
        )
        start = self.engine.now
        try:
            seqno = yield from body
        except Exception as exc:
            span.annotate(error=type(exc).__name__).end()
            tr.metrics.counter(
                "cspot.append.errors", help="failed remote appends"
            ).inc(log=log_name, error=type(exc).__name__)
            raise
        span.annotate(seqno=seqno).end()
        tr.metrics.histogram(
            "cspot.append.latency_s", help="remote append latency (sim)"
        ).observe(self.engine.now - start, log=log_name)
        return seqno

    def _append_body(
        self,
        client: CSPOTNode,
        server: CSPOTNode,
        log_name: str,
        payload: bytes,
        client_id: str,
        op_id: str,
        cached_element_size: Optional[int],
        append_cost_s: float,
    ) -> Generator:
        path = self.path(client.name, server.name)
        if not client.alive:
            raise NodeDownError(f"client node {client.name!r} is powered off")

        # Round trip 1: element size fetch (skipped with a warm cache).
        if cached_element_size is None:
            yield from self._leg(path)  # request
            self._require_server(server, path)
            log = server.namespace.get(log_name)
            element_size = log.element_size
            yield from self._leg(path)  # response
        else:
            element_size = cached_element_size

        if len(payload) > element_size:
            # With a correct size this is caught client-side before sending.
            raise ElementSizeError(
                f"payload {len(payload)}B exceeds element size {element_size}B "
                f"for log {log_name!r}"
            )

        # Round trip 2: payload + ack.
        yield from self._leg(path)  # payload transfer
        self._require_server(server, path)
        log = server.namespace.get(log_name)
        if cached_element_size is not None and cached_element_size != log.element_size:
            # Stale cache: server rejects the mis-framed message.
            raise ElementSizeError(
                f"stale cached element size {cached_element_size} != "
                f"server's {log.element_size} for log {log_name!r}"
            )
        # Exactly-once: duplicate retries return the recorded seqno without
        # a second append.
        seqno = server.dedup.check(client_id, op_id)
        if seqno is None:
            yield self.engine.timeout(append_cost_s)
            self._require_server(server, path)
            seqno = log.append(payload, now=self.engine.now)
            server.dedup.record(client_id, op_id, seqno)
        elif self.tracer.enabled:
            self.tracer.metrics.counter(
                "cspot.dedup.hits", help="duplicate appends absorbed server-side"
            ).inc(log=log_name)

        # Ack leg: this is where "append succeeded, seqno lost" happens.
        if path.faults.drop_ack():
            raise AckLostError(
                f"append to {log_name!r} committed as seqno {seqno} "
                f"but the acknowledgement was lost"
            )
        yield from self._leg(path)  # ack
        return seqno

    def remote_fetch(
        self,
        client: CSPOTNode,
        server: CSPOTNode,
        log_name: str,
        since_seqno: int = 0,
    ) -> Process:
        """Fetch log entries with seqno > ``since_seqno`` from a remote node.

        One round trip (request + response); this is the "data parked in
        logs ... fetched once the nodes become active" read path, e.g. ND
        pulling the alert log from UCSB on its duty cycle. The returned
        process yields a list of :class:`~repro.cspot.log.LogEntry`.
        """
        body = self._fetch_body(client, server, log_name, since_seqno)
        if self.tracer.enabled:
            body = self._traced_fetch(body, client, server, log_name, since_seqno)
        return self.engine.process(
            body,
            name=f"fetch:{client.name}<-{server.name}:{log_name}",
        )

    def _traced_fetch(
        self,
        body: Generator,
        client: CSPOTNode,
        server: CSPOTNode,
        log_name: str,
        since_seqno: int,
    ) -> Generator:
        """Wrap a fetch body in a ``cspot.fetch`` span (enabled mode only)."""
        tr = self.tracer
        span = tr.span(
            "cspot.fetch",
            category="cspot",
            attrs={
                "src": server.name,
                "dst": client.name,
                "log": log_name,
                "since": since_seqno,
            },
        )
        start = self.engine.now
        try:
            entries = yield from body
        except Exception as exc:
            span.annotate(error=type(exc).__name__).end()
            tr.metrics.counter(
                "cspot.fetch.errors", help="failed remote fetches"
            ).inc(log=log_name, error=type(exc).__name__)
            raise
        span.annotate(entries=len(entries)).end()
        tr.metrics.histogram(
            "cspot.fetch.latency_s", help="remote fetch latency (sim)"
        ).observe(self.engine.now - start, log=log_name)
        return entries

    def _fetch_body(
        self,
        client: CSPOTNode,
        server: CSPOTNode,
        log_name: str,
        since_seqno: int,
    ) -> Generator:
        path = self.path(client.name, server.name)
        if not client.alive:
            raise NodeDownError(f"client node {client.name!r} is powered off")
        yield from self._leg(path)  # request
        self._require_server(server, path)
        entries = list(server.namespace.get(log_name).scan(since_seqno))
        yield from self._leg(path)  # response
        return entries

    def _leg(self, path: NetworkPath) -> Generator:
        """One message leg: latency + partition check at send time."""
        if path.faults.partitioned_at(self.engine.now):
            raise PartitionedError(f"path {path.name!r} is partitioned")
        yield self.engine.timeout(path.delay_s(self._rng))
        if path.faults.partitioned_at(self.engine.now):
            # Partition began while the message was in flight: it is lost.
            raise PartitionedError(f"path {path.name!r} partitioned in flight")

    @staticmethod
    def _require_server(server: CSPOTNode, path: NetworkPath) -> None:
        if not server.alive:
            raise NodeDownError(f"server node {server.name!r} is powered off")


class RemoteAppendClient:
    """Reliable append: retry until a sequence number is returned.

    Implements the paper's discipline: "a 'failure to append' ... is simply
    retried until it succeeds or the application terminates the
    computation". Retries reuse the same op id so the server's dedup table
    upgrades at-least-once to exactly-once. The client optionally caches the
    element size after the first success (the latency optimization), and
    invalidates the cache on a stale-size failure.
    """

    _ids = itertools.count()

    def __init__(
        self,
        transport: Transport,
        client: CSPOTNode,
        server: CSPOTNode,
        log_name: str,
        use_size_cache: bool = False,
        retry_backoff_s: float = 0.5,
        max_retries: int = 100,
        max_backoff_s: float = 60.0,
        backoff_factor: float = 2.0,
    ) -> None:
        if retry_backoff_s < 0:
            raise ValueError(f"negative backoff: {retry_backoff_s}")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1: {max_retries}")
        if max_backoff_s < retry_backoff_s:
            raise ValueError("max_backoff_s must be >= retry_backoff_s")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1: {backoff_factor}")
        self.transport = transport
        self.client = client
        self.server = server
        self.log_name = log_name
        self.use_size_cache = use_size_cache
        self.retry_backoff_s = retry_backoff_s
        self.max_retries = max_retries
        self.max_backoff_s = max_backoff_s
        self.backoff_factor = backoff_factor
        self.client_id = f"{client.name}/{next(self._ids)}"
        self._cached_size: Optional[int] = None
        self._op_counter = itertools.count()
        self.attempts = 0

    def append(self, payload: bytes) -> Process:
        """Start a reliable append; the process yields the seqno."""
        op_id = f"op-{next(self._op_counter)}"
        return self.transport.engine.process(
            self._retry_body(payload, op_id),
            name=f"reliable-append:{self.client.name}:{op_id}",
        )

    def _retry_body(self, payload: bytes, op_id: str) -> Generator:
        engine = self.transport.engine
        tracer = self.transport.tracer
        last_error: Exception | None = None
        for attempt in range(self.max_retries):
            self.attempts += 1
            if tracer.enabled:
                tracer.metrics.counter(
                    "cspot.append.attempts", help="reliable-append attempts"
                ).inc(log=self.log_name)
            cached = self._cached_size if self.use_size_cache else None
            try:
                seqno = yield self.transport.remote_append(
                    self.client,
                    self.server,
                    self.log_name,
                    payload,
                    client_id=self.client_id,
                    op_id=op_id,
                    cached_element_size=cached,
                )
            except ElementSizeError as exc:
                if cached is not None:
                    # Stale cache: invalidate and retry with a size fetch.
                    self._cached_size = None
                    last_error = exc
                    if tracer.enabled:
                        tracer.metrics.counter(
                            "cspot.append.retries", help="retried appends"
                        ).inc(log=self.log_name, error=type(exc).__name__)
                    continue
                raise  # genuinely oversized payload: not retryable
            except (PartitionedError, NodeDownError, AckLostError) as exc:
                last_error = exc
                if tracer.enabled:
                    tracer.metrics.counter(
                        "cspot.append.retries", help="retried appends"
                    ).inc(log=self.log_name, error=type(exc).__name__)
                if self.retry_backoff_s:
                    # Exponential backoff, capped: long partitions (the
                    # paper's "frequent network interruption" in remote
                    # deployments) are waited out rather than hammered.
                    backoff = min(
                        self.retry_backoff_s
                        * (self.backoff_factor ** min(attempt, 12)),
                        self.max_backoff_s,
                    )
                    yield engine.timeout(backoff)
                continue
            if self.use_size_cache and self._cached_size is None:
                self._cached_size = self.server.namespace.get(
                    self.log_name
                ).element_size
            return seqno
        raise AppendError(
            f"append to {self.log_name!r} failed after {self.max_retries} "
            f"attempts; last error: {last_error}"
        )
