"""Fault injection: partitions, ack loss, power loss schedules.

"Devices operating in remote locations using 5G connectivity can be subject
to frequent network interruption" (section 3.1) -- the delay-tolerance tests
drive these injectors to show that retried appends deliver exactly once
through arbitrary partition/power-loss schedules.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

import numpy as np


class FaultInjector:
    """Per-path fault schedule.

    Partitions are half-open windows ``[start, end)`` of simulated time in
    which messages on the path fail. Ack loss is i.i.d. with probability
    ``ack_loss_prob`` applied to the acknowledgement leg only (producing the
    paper's "append succeeded but the sequence number was lost" mode).

    Ack-loss draws require a registry-derived generator: either pass
    ``rng`` explicitly (derive it from the engine's
    :class:`~repro.simkernel.rng.RngRegistry`) or let
    :meth:`~repro.cspot.transport.Transport.connect` bind a per-path named
    stream. There is deliberately *no* silent fallback generator -- a
    fixed-seed default would ignore the master seed, so campaigns with
    different seeds would replay identical ack-loss sequences.
    """

    def __init__(
        self,
        ack_loss_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= ack_loss_prob < 1.0:
            raise ValueError(f"ack_loss_prob out of [0,1): {ack_loss_prob}")
        self.ack_loss_prob = ack_loss_prob
        self._rng = rng
        self._starts: list[float] = []
        self._ends: list[float] = []

    def bind_rng(self, rng: np.random.Generator) -> None:
        """Attach the ack-loss stream if none was passed at construction.

        Idempotent in the sense that an explicitly supplied generator is
        never overridden; :class:`~repro.cspot.transport.Transport` calls
        this when a path is connected so default-constructed injectors end
        up on a named, master-seed-derived stream.
        """
        if self._rng is None:
            self._rng = rng

    def add_partition(self, start: float, end: float) -> None:
        """Schedule a partition window [start, end)."""
        if end <= start:
            raise ValueError(f"empty partition window [{start}, {end})")
        # Keep windows sorted and non-overlapping for O(log n) queries.
        for s, e in zip(self._starts, self._ends):
            if start < e and s < end:
                raise ValueError(
                    f"partition [{start}, {end}) overlaps existing [{s}, {e})"
                )
        idx = bisect_right(self._starts, start)
        self._starts.insert(idx, start)
        self._ends.insert(idx, end)

    def add_outage(self, start: float, duration: float) -> None:
        """Schedule a partition by start time + duration (campaign idiom).

        Unlike :meth:`add_partition`, overlap with existing windows is
        allowed: only the uncovered gaps of ``[start, start+duration)``
        are added, so concurrent fault campaigns merge instead of raising.
        """
        end = start + duration
        if end <= start:
            raise ValueError(f"empty outage window [{start}, {end})")
        cursor = start
        for s, e in zip(list(self._starts), list(self._ends)):
            if e <= cursor:
                continue
            if s >= end:
                break
            if s > cursor:
                self.add_partition(cursor, s)
            cursor = max(cursor, e)
        if cursor < end:
            self.add_partition(cursor, end)

    @property
    def partition_windows(self) -> list[tuple[float, float]]:
        """The scheduled ``[start, end)`` windows, sorted by start."""
        return list(zip(self._starts, self._ends))

    def partitioned_at(self, t: float) -> bool:
        """Is the path partitioned at simulated time ``t``?"""
        idx = bisect_right(self._starts, t) - 1
        return idx >= 0 and t < self._ends[idx]

    def next_heal_after(self, t: float) -> Optional[float]:
        """End of the partition window covering ``t``, or None."""
        idx = bisect_right(self._starts, t) - 1
        if idx >= 0 and t < self._ends[idx]:
            return self._ends[idx]
        return None

    def drop_ack(self) -> bool:
        """Draw whether this operation's acknowledgement is lost."""
        if self.ack_loss_prob == 0.0:
            return False
        if self._rng is None:
            raise RuntimeError(
                "FaultInjector with ack_loss_prob > 0 has no generator; "
                "pass rng= (derived from the RngRegistry) or register the "
                "path via Transport.connect, which binds a named stream"
            )
        return bool(self._rng.random() < self.ack_loss_prob)
