"""Server-side deduplication for exactly-once append semantics.

The paper: "Retrying the append until a sequence number is successfully
returned ensures data integrity, but deduplication of the CSPOT logs is
necessary to implement 'exactly once' delivery semantics." The table maps
``(client_id, op_id)`` to the sequence number the first successful append
received; a retry of an already-applied operation returns the recorded
seqno without appending again.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class DedupTable:
    """Bounded LRU map of (client_id, op_id) -> seqno."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._table: OrderedDict[tuple[str, str], int] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def check(self, client_id: str, op_id: str) -> Optional[int]:
        """Return the recorded seqno for a duplicate, else None."""
        key = (client_id, op_id)
        seqno = self._table.get(key)
        if seqno is not None:
            self._table.move_to_end(key)
            self.hits += 1
            return seqno
        self.misses += 1
        return None

    def record(self, client_id: str, op_id: str, seqno: int) -> None:
        """Record a completed operation's sequence number."""
        key = (client_id, op_id)
        if key in self._table and self._table[key] != seqno:
            raise ValueError(
                f"op {key} already recorded with seqno {self._table[key]}, "
                f"refusing to overwrite with {seqno}"
            )
        self._table[key] = seqno
        self._table.move_to_end(key)
        while len(self._table) > self.capacity:
            self._table.popitem(last=False)

    def __len__(self) -> int:
        return len(self._table)
