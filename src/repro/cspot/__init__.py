"""CSPOT: a log-based distributed runtime (C Serverless Platform Of Things).

Python reimplementation of the CSPOT runtime the paper builds xGFabric on
(Wolski et al., SEC'19). The essentials, per the paper's section 3.4:

* **Logs as persistent program variables** -- a :class:`~repro.cspot.log.WooF`
  is an append-only, fixed-element-size, circular log with atomically
  assigned sequence numbers. All program state updates are log appends, so a
  program interrupted at any moment resumes from persistent storage.
* **Two failure modes of append** -- the call errors, or it succeeds but the
  sequence number is lost in transit. Retrying until a sequence number
  returns guarantees durability; server-side deduplication supplies
  exactly-once semantics (:mod:`repro.cspot.dedup`).
* **Handlers, never locks** -- the only computational mechanism is a handler
  fired by a single log append. Handlers cannot block on future events;
  multi-event synchronization is done by scanning logs.
* **Delay-tolerant networking** -- network partitions and power loss are
  masked by retry against persistent logs; data is "parked" in logs until
  consumers (e.g. batch HPC jobs) fetch it.
* **Two-round-trip transport** -- the ZeroMQ-based protocol fetches the
  log's element size before sending the payload; a client-side size cache
  halves the latency but fails if the server-side element size changes
  (both behaviours implemented, cf. the Table 1 discussion).
"""

from repro.cspot.boundary import (
    CrossShardLink,
    FabricEnvelope,
    ShardBoundary,
    default_site_hub_path,
)
from repro.cspot.errors import (
    AckLostError,
    AppendError,
    CSPOTError,
    ElementSizeError,
    EvictedError,
    NodeDownError,
    PartitionedError,
)
from repro.cspot.storage import FileStorage, MemoryStorage, StorageBackend
from repro.cspot.log import LogEntry, WooF
from repro.cspot.namespace import Namespace
from repro.cspot.dedup import DedupTable
from repro.cspot.node import CSPOTNode
from repro.cspot.faults import FaultInjector
from repro.cspot.transport import NetworkPath, RemoteAppendClient, Transport
from repro.cspot.latency import LatencyProbe, measure_path_latency
from repro.cspot.replication import LogReplicator

__all__ = [
    "CSPOTError",
    "AppendError",
    "AckLostError",
    "ElementSizeError",
    "EvictedError",
    "NodeDownError",
    "PartitionedError",
    "StorageBackend",
    "MemoryStorage",
    "FileStorage",
    "WooF",
    "LogEntry",
    "Namespace",
    "DedupTable",
    "CSPOTNode",
    "FaultInjector",
    "NetworkPath",
    "Transport",
    "RemoteAppendClient",
    "LatencyProbe",
    "measure_path_latency",
    "LogReplicator",
    "CrossShardLink",
    "FabricEnvelope",
    "ShardBoundary",
    "default_site_hub_path",
]
