"""Persistent storage backends for WooF logs.

CSPOT logs live in persistent storage: "power-loss ... and other device
failures that do not destroy the log storage are treated in the same way as
network interruption" (section 3.1). We model that by separating the storage
object's lifetime from the node process's lifetime -- a node "power loss"
destroys the process but not its :class:`StorageBackend`.

Two backends: :class:`MemoryStorage` (fast; "persistent" relative to the
simulated node process) and :class:`FileStorage` (actually on disk, used by
tests that kill and revive real state).
"""

from __future__ import annotations

import json
import os
import struct
from abc import ABC, abstractmethod
from typing import Iterator


class StorageBackend(ABC):
    """A fixed-record append store with a persistent header."""

    @abstractmethod
    def read_header(self) -> dict | None:
        """Return the stored header dict, or None if never written."""

    @abstractmethod
    def write_header(self, header: dict) -> None:
        """Persist the header (element size, history size, next seqno...)."""

    @abstractmethod
    def write_record(self, slot: int, payload: bytes) -> None:
        """Write a record into circular ``slot``."""

    @abstractmethod
    def read_record(self, slot: int) -> bytes:
        """Read the record in ``slot``; raises KeyError if never written."""

    @abstractmethod
    def sync(self) -> None:
        """Flush to the persistence boundary (no-op for memory)."""


class MemoryStorage(StorageBackend):
    """In-memory backend, persistent across simulated node restarts."""

    def __init__(self) -> None:
        self._header: dict | None = None
        self._records: dict[int, bytes] = {}

    def read_header(self) -> dict | None:
        return dict(self._header) if self._header is not None else None

    def write_header(self, header: dict) -> None:
        self._header = dict(header)

    def write_record(self, slot: int, payload: bytes) -> None:
        self._records[slot] = bytes(payload)

    def read_record(self, slot: int) -> bytes:
        try:
            return self._records[slot]
        except KeyError:
            raise KeyError(f"slot {slot} never written") from None

    def sync(self) -> None:
        pass

    def slots(self) -> Iterator[int]:
        return iter(sorted(self._records))


class FileStorage(StorageBackend):
    """Disk-backed backend: a JSON header file plus a records file.

    The record file stores ``(slot, length, payload)`` frames; the latest
    frame for a slot wins on recovery. Append-dominant workloads therefore
    write sequentially -- the same reason CSPOT picked logs in the first
    place ("simple to implement efficiently at all scales").
    """

    _FRAME = struct.Struct("<QI")  # slot, payload length

    def __init__(self, directory: str, name: str) -> None:
        os.makedirs(directory, exist_ok=True)
        self._header_path = os.path.join(directory, f"{name}.header.json")
        self._records_path = os.path.join(directory, f"{name}.records.bin")
        self._records: dict[int, bytes] = {}
        self._recover()

    def _recover(self) -> None:
        if not os.path.exists(self._records_path):
            return
        with open(self._records_path, "rb") as fh:
            while True:
                frame = fh.read(self._FRAME.size)
                if len(frame) < self._FRAME.size:
                    break
                slot, length = self._FRAME.unpack(frame)
                payload = fh.read(length)
                if len(payload) < length:
                    break  # torn tail write: discard, like a real WAL
                self._records[slot] = payload

    def read_header(self) -> dict | None:
        if not os.path.exists(self._header_path):
            return None
        with open(self._header_path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def write_header(self, header: dict) -> None:
        tmp = self._header_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(header, fh)
        os.replace(tmp, self._header_path)

    def write_record(self, slot: int, payload: bytes) -> None:
        self._records[slot] = bytes(payload)
        with open(self._records_path, "ab") as fh:
            fh.write(self._FRAME.pack(slot, len(payload)))
            fh.write(payload)

    def read_record(self, slot: int) -> bytes:
        try:
            return self._records[slot]
        except KeyError:
            raise KeyError(f"slot {slot} never written") from None

    def sync(self) -> None:
        # Writes above are flushed on close; an explicit fsync pass would be
        # overkill for the simulation but the hook is here for symmetry.
        pass
