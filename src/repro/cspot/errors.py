"""CSPOT error hierarchy.

The paper is precise about append's two failure modes: "Either the append
fails, and the API call returns an error, or the append succeeds but the
sequence number associated with the append ... is lost". They map to
:class:`AppendError` and :class:`AckLostError` respectively.
"""

from __future__ import annotations


class CSPOTError(Exception):
    """Base class for CSPOT runtime errors."""


class AppendError(CSPOTError):
    """The append did not happen (validation, partition, node down...)."""


class AckLostError(CSPOTError):
    """The append *happened* but its sequence number was lost in transit.

    Carries no sequence number by construction -- that is the point. A
    client observing this must retry (with the same op id for exactly-once).
    """


class ElementSizeError(AppendError):
    """Payload does not fit the log's fixed element size, or a stale
    client-side size cache disagrees with the server (the documented failure
    of the latency optimization in section 4.2)."""


class EvictedError(CSPOTError):
    """The requested sequence number has been overwritten: WooF logs are
    circular with a fixed history size."""


class PartitionedError(AppendError):
    """The network path is partitioned; delay-tolerant callers retry."""


class NodeDownError(AppendError):
    """The target node is powered off; its logs persist and it may return."""
