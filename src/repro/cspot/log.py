"""The WooF: CSPOT's append-only circular log.

A WooF ("Wide area object of Functions" in CSPOT parlance) holds fixed-size
elements in a circular buffer of ``history_size`` slots. Appends are assigned
monotonically increasing sequence numbers starting at 1; only this
assignment is atomic -- reads are unsynchronized, which is safe because
entries are immutable once written (single-assignment).

Invariants (property-tested in ``tests/cspot``):

* sequence numbers are dense and strictly increasing;
* an entry read back equals the entry appended (until evicted);
* after eviction exactly the most recent ``history_size`` entries remain;
* recovery from storage preserves all of the above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.cspot.errors import ElementSizeError, EvictedError
from repro.cspot.storage import MemoryStorage, StorageBackend


@dataclass(frozen=True)
class LogEntry:
    """An immutable log entry: payload plus its assigned sequence number."""

    seqno: int
    payload: bytes
    appended_at: float  # simulated time of the append


class WooF:
    """An append-only circular log with fixed-size elements.

    Parameters
    ----------
    name:
        Log name within its namespace.
    element_size:
        Maximum payload size in bytes; stored in the log header. Remote
        appenders must know it to frame their messages -- fetching it is
        the first round trip of the transport protocol.
    history_size:
        Number of slots; older entries are overwritten (circular).
    storage:
        Persistence backend; defaults to a fresh :class:`MemoryStorage`.
        Passing an existing backend recovers the log from it.
    """

    def __init__(
        self,
        name: str,
        element_size: int,
        history_size: int = 1024,
        storage: Optional[StorageBackend] = None,
    ) -> None:
        if element_size <= 0:
            raise ValueError(f"element_size must be positive: {element_size}")
        if history_size <= 0:
            raise ValueError(f"history_size must be positive: {history_size}")
        self.name = name
        self.element_size = element_size
        self.history_size = history_size
        self.storage = storage if storage is not None else MemoryStorage()
        header = self.storage.read_header()
        if header is not None:
            if header["element_size"] != element_size or header["history_size"] != history_size:
                raise ValueError(
                    f"log {name!r}: storage header "
                    f"(element_size={header['element_size']}, "
                    f"history_size={header['history_size']}) does not match "
                    f"requested ({element_size}, {history_size})"
                )
            self._last_seqno = int(header["last_seqno"])
        else:
            self._last_seqno = 0
            self._write_header()
        self._on_append: list[Callable[["WooF", LogEntry], None]] = []

    # -- header ------------------------------------------------------------

    def _write_header(self) -> None:
        self.storage.write_header(
            {
                "element_size": self.element_size,
                "history_size": self.history_size,
                "last_seqno": self._last_seqno,
            }
        )

    # -- observers -----------------------------------------------------------

    def subscribe(self, fn: Callable[["WooF", LogEntry], None]) -> None:
        """Register a local observer called synchronously on each append.

        This is the hook :class:`~repro.cspot.node.CSPOTNode` uses to fire
        handlers; application code should register handlers on the node.
        """
        self._on_append.append(fn)

    # -- core operations -----------------------------------------------------------

    @property
    def last_seqno(self) -> int:
        """Sequence number of the most recent append (0 if empty)."""
        return self._last_seqno

    @property
    def earliest_seqno(self) -> int:
        """Oldest sequence number still resident (0 if empty)."""
        if self._last_seqno == 0:
            return 0
        return max(1, self._last_seqno - self.history_size + 1)

    def append(self, payload: bytes, now: float = 0.0) -> int:
        """Append ``payload``, returning its sequence number.

        The seqno assignment is the only atomic step (the paper's design
        point); in this single-threaded simulation that is trivially true,
        and the test suite asserts the resulting invariants directly.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError(f"payload must be bytes, got {type(payload).__name__}")
        if len(payload) > self.element_size:
            raise ElementSizeError(
                f"log {self.name!r}: payload of {len(payload)} bytes exceeds "
                f"element size {self.element_size}"
            )
        self._last_seqno += 1
        seqno = self._last_seqno
        slot = (seqno - 1) % self.history_size
        entry = LogEntry(seqno=seqno, payload=bytes(payload), appended_at=now)
        self.storage.write_record(slot, self._frame(entry))
        self._write_header()
        self.storage.sync()
        for fn in list(self._on_append):
            fn(self, entry)
        return seqno

    def get(self, seqno: int) -> LogEntry:
        """Fetch the entry with the given sequence number."""
        if seqno < 1 or seqno > self._last_seqno:
            raise KeyError(
                f"log {self.name!r}: seqno {seqno} out of range 1..{self._last_seqno}"
            )
        if seqno < self.earliest_seqno:
            raise EvictedError(
                f"log {self.name!r}: seqno {seqno} evicted "
                f"(earliest resident is {self.earliest_seqno})"
            )
        slot = (seqno - 1) % self.history_size
        entry = self._unframe(self.storage.read_record(slot))
        if entry.seqno != seqno:  # pragma: no cover - defensive
            raise EvictedError(
                f"log {self.name!r}: slot for seqno {seqno} holds {entry.seqno}"
            )
        return entry

    def latest(self, n: int = 1) -> list[LogEntry]:
        """The most recent ``n`` resident entries, oldest first."""
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        lo = max(self.earliest_seqno, self._last_seqno - n + 1)
        if self._last_seqno == 0:
            return []
        return [self.get(s) for s in range(lo, self._last_seqno + 1)]

    def scan(self, since_seqno: int = 0) -> Iterator[LogEntry]:
        """Iterate resident entries with seqno > ``since_seqno``, in order.

        This is the primitive handler code uses for multi-event
        synchronization ("handler code must parse and scan the logs").
        """
        lo = max(self.earliest_seqno, since_seqno + 1)
        for s in range(lo, self._last_seqno + 1):
            yield self.get(s)

    def __len__(self) -> int:
        """Number of resident entries."""
        if self._last_seqno == 0:
            return 0
        return self._last_seqno - self.earliest_seqno + 1

    # -- framing ---------------------------------------------------------------------

    @staticmethod
    def _frame(entry: LogEntry) -> bytes:
        import struct

        head = struct.pack("<Qd I", entry.seqno, entry.appended_at, len(entry.payload))
        return head + entry.payload

    @staticmethod
    def _unframe(frame: bytes) -> LogEntry:
        import struct

        head_size = struct.calcsize("<Qd I")
        seqno, appended_at, length = struct.unpack("<Qd I", frame[:head_size])
        return LogEntry(
            seqno=seqno,
            payload=frame[head_size : head_size + length],
            appended_at=appended_at,
        )

    @classmethod
    def recover(cls, name: str, storage: StorageBackend) -> "WooF":
        """Re-open a log from its storage backend after a process death."""
        header = storage.read_header()
        if header is None:
            raise ValueError(f"storage for {name!r} holds no log header")
        return cls(
            name,
            element_size=int(header["element_size"]),
            history_size=int(header["history_size"]),
            storage=storage,
        )
