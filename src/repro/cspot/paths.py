"""Calibrated network paths for the testbed topology (Table 1 anchors).

A remote append costs 4 one-way legs (size-fetch round trip + payload/ack
round trip) plus ~1 ms of server-side durable-append work, so the per-leg
means below reproduce the paper's measured averages:

* UNL->UCSB over the private 5G + Internet: 4 x 25 ms + 1 ms = 101 ms
  (paper: 101 +/- 17 ms). The 5G hop dominates: radio frame alignment,
  HARQ, and the core's UPF add ~21 ms one-way over the bare Internet path.
* UNL->UCSB over wired Internet only: 4 x 4 ms + 1 ms = 17 ms
  (paper: 17 +/- 0.8 ms).
* UCSB->ND over Internet: 4 x 22.75 ms + 1 ms = 92 ms (paper: 92 +/- 1 ms).

Per-leg jitter is sized so the 4-leg sum matches the paper's SD.
"""

from __future__ import annotations

from repro.cspot.transport import NetworkPath


def unl_ucsb_5g() -> NetworkPath:
    """UNL -> UCSB carried over the private 5G network and the Internet."""
    return NetworkPath(name="UNL->UCSB (5G+Int.)", one_way_ms=25.0, jitter_ms=8.5)


def unl_ucsb_internet() -> NetworkPath:
    """UNL -> UCSB with the client moved to wired Ethernet (no 5G hop)."""
    return NetworkPath(name="UNL->UCSB (Internet)", one_way_ms=4.0, jitter_ms=0.4)


def ucsb_nd_internet() -> NetworkPath:
    """UCSB -> ND over the public Internet."""
    return NetworkPath(name="UCSB->ND (Internet)", one_way_ms=22.75, jitter_ms=0.5)


def testbed_paths() -> dict[str, NetworkPath]:
    """All three Table 1 paths keyed by a short identifier."""
    return {
        "unl-ucsb-5g": unl_ucsb_5g(),
        "unl-ucsb-internet": unl_ucsb_internet(),
        "ucsb-nd-internet": ucsb_nd_internet(),
    }


#: Paper anchors: path key -> (mean ms, SD ms).
TABLE1_ANCHORS: dict[str, tuple[float, float]] = {
    "unl-ucsb-5g": (101.0, 17.0),
    "unl-ucsb-internet": (17.0, 0.8),
    "ucsb-nd-internet": (92.0, 1.0),
}
