"""The shard boundary: CSPOT transfers that leave the local engine.

A sharded fabric run (:mod:`repro.parallel`) partitions the CSPOT node
topology by cell, so an append whose destination node lives on another
shard cannot execute locally -- there is no server object to deliver to.
This module is the transport's seam for exactly that case: the append is
*exported* as a :class:`FabricEnvelope`, a time-stamped, totally-ordered
message the coordinator carries across the shard boundary at the next
conservative window barrier.

The envelope's key ``(send_t, src_cell, seq)`` mirrors the
``(t, shard, seq)`` total order of the merge layer: ``send_t`` is the
simulated send time, ``src_cell`` the stable shard id of the sender, and
``seq`` a per-source monotonic counter -- so the global envelope stream
has one worker-count-invariant order with no run-to-run ambiguity.

Latency is stamped at export time from a per-cell named RNG stream
(``shard.cell<ccc>.transfer``), which makes the draw a function of
``(master seed, cell, draw index)`` alone -- never of the worker layout.
The two-round-trip cost model mirrors :meth:`Transport._append_body`:
four path legs (size fetch + response, payload, ack) plus the server-side
append cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.cspot.transport import (
    DEFAULT_APPEND_COST_S,
    NetworkPath,
    lognormal_delay_s,
)

#: Message legs in one uncached remote append: size request, size
#: response, payload transfer, ack (section 4.2's two-round-trip protocol).
TRANSFER_LEGS = 4


def default_site_hub_path() -> NetworkPath:
    """The calibrated site->hub path: private 5G + Internet backhaul.

    One-way mean/jitter follow the paper's UNL->UCSB (5G + Internet)
    calibration (Table 1): ~25 ms one-way so the four-leg append lands on
    the ~100 ms average, with the measured ~17 ms SD spread over the legs.
    """
    return NetworkPath(
        name="site->hub (5g+internet)", one_way_ms=25.0, jitter_ms=4.0
    )


@dataclass(frozen=True)
class CrossShardLink:
    """The latency model of one cross-shard CSPOT path: pure data.

    Mirrors a :class:`~repro.cspot.transport.NetworkPath`'s latency shape
    plus the two-round-trip append protocol cost, so exported transfers
    are stamped with the same distribution an in-engine
    :meth:`~repro.cspot.transport.Transport.remote_append` would spend.

    Deliberately *not* a wrapped ``NetworkPath``: the link rides inside
    every :class:`~repro.parallel.fabric_shard.FabricShardTask` across
    the coordinator->worker pickling seam, and a ``NetworkPath`` carries
    a :class:`~repro.cspot.faults.FaultInjector` whose bound generator is
    ambient state (the shard-boundary purity rule, REPRO511). Everything
    here is a plain scalar, so a pickled link is a value, never a
    snapshot of live RNG state. Defaults follow the calibrated site->hub
    leg (:func:`default_site_hub_path`).
    """

    name: str = "site->hub (5g+internet)"
    one_way_ms: float = 25.0
    jitter_ms: float = 4.0
    append_cost_s: float = DEFAULT_APPEND_COST_S

    def __post_init__(self) -> None:
        if self.one_way_ms <= 0:
            raise ValueError(
                f"one_way_ms must be positive: {self.one_way_ms}"
            )
        if self.jitter_ms < 0:
            raise ValueError(
                f"jitter_ms must be non-negative: {self.jitter_ms}"
            )
        if self.append_cost_s < 0:
            raise ValueError(
                f"append_cost_s must be non-negative: {self.append_cost_s}"
            )

    @classmethod
    def from_path(
        cls, path: NetworkPath, append_cost_s: float = DEFAULT_APPEND_COST_S
    ) -> "CrossShardLink":
        """The pure link equivalent of ``path`` (drops its fault state)."""
        return cls(
            name=path.name,
            one_way_ms=path.one_way_ms,
            jitter_ms=path.jitter_ms,
            append_cost_s=append_cost_s,
        )

    def delay_s(self, rng: np.random.Generator) -> float:
        """Draw one leg's latency (same math as ``NetworkPath.delay_s``)."""
        return lognormal_delay_s(self.one_way_ms, self.jitter_ms, rng)

    def transfer_latency_s(self, rng: np.random.Generator) -> float:
        """Draw one transfer's end-to-end latency (4 legs + append cost)."""
        legs = sum(self.delay_s(rng) for _ in range(TRANSFER_LEGS))
        return legs + self.append_cost_s


@dataclass(frozen=True)
class FabricEnvelope:
    """One cross-shard CSPOT transfer, carried between window barriers.

    Attributes
    ----------
    send_t / src_cell / seq:
        The total-order key: simulated send time, stable shard id of the
        sending cell, and the sender's monotonic transfer counter.
    dst_cell:
        Stable shard id of the destination cell (the owner of the target
        CSPOT node).
    log:
        Destination log name on the receiving node.
    payload:
        The appended bytes, verbatim.
    latency_s:
        End-to-end transfer latency stamped at export time from the
        sender's per-cell stream.
    deliver_t:
        Assigned by the coordinator's bus: the simulated delivery time,
        ``max(send_t + latency_s, next barrier)`` -- never earlier than
        the barrier after the sending window (conservatively correct by
        construction). ``None`` until routed.
    """

    send_t: float
    src_cell: int
    seq: int
    dst_cell: int
    log: str
    payload: bytes
    latency_s: float
    deliver_t: Optional[float] = None

    def __post_init__(self) -> None:
        if self.src_cell < 0 or self.dst_cell < 0:
            raise ValueError(
                f"negative cell index: src={self.src_cell} dst={self.dst_cell}"
            )
        if self.seq < 0:
            raise ValueError(f"negative envelope seq: {self.seq}")
        if self.latency_s <= 0:
            raise ValueError(f"latency_s must be positive: {self.latency_s}")
        if not self.log:
            raise ValueError("empty destination log name")

    @property
    def key(self) -> tuple[float, int, int]:
        """The ``(t, shard, seq)``-shaped total-order key."""
        return (self.send_t, self.src_cell, self.seq)

    @property
    def delivery_key(self) -> tuple[float, int, int]:
        """``(deliver_t, src_cell, seq)``: the destination ingest order."""
        if self.deliver_t is None:
            raise ValueError(
                f"envelope {self.key} has not been routed yet "
                "(deliver_t unassigned)"
            )
        return (self.deliver_t, self.src_cell, self.seq)

    @property
    def arrival_t(self) -> float:
        """Unclamped arrival time; the bus clamps it to the next barrier."""
        return self.send_t + self.latency_s

    def stamped(self, deliver_t: float) -> "FabricEnvelope":
        """A copy with the bus-assigned delivery time."""
        if deliver_t < self.send_t:
            raise ValueError(
                f"deliver_t {deliver_t} precedes send_t {self.send_t}"
            )
        return replace(self, deliver_t=deliver_t)


class ShardBoundary:
    """Collects appends destined for CSPOT nodes owned by another shard.

    One boundary per shard-local :class:`~repro.cspot.transport.Transport`.
    Every exported append becomes a :class:`FabricEnvelope` with a
    per-source monotonic ``seq``; the shard runner drains the buffer at
    each window barrier and hands the envelopes to the coordinator.
    """

    def __init__(self, link: CrossShardLink) -> None:
        self.link = link
        self._outbound: list[FabricEnvelope] = []
        self._seqs: dict[int, int] = {}
        self.exported = 0

    def export(
        self,
        *,
        send_t: float,
        src_cell: int,
        dst_cell: int,
        log: str,
        payload: bytes,
        rng: np.random.Generator,
    ) -> FabricEnvelope:
        """Buffer one outbound transfer; returns the stamped envelope."""
        seq = self._seqs.get(src_cell, 0)
        self._seqs[src_cell] = seq + 1
        envelope = FabricEnvelope(
            send_t=send_t,
            src_cell=src_cell,
            seq=seq,
            dst_cell=dst_cell,
            log=log,
            payload=payload,
            latency_s=self.link.transfer_latency_s(rng),
        )
        self._outbound.append(envelope)
        self.exported += 1
        return envelope

    def drain(self) -> tuple[FabricEnvelope, ...]:
        """Hand back (and clear) every envelope exported since last drain."""
        out = tuple(self._outbound)
        self._outbound.clear()
        return out

    def __len__(self) -> int:
        return len(self._outbound)
