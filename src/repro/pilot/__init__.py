"""Pilot-job system (RADICAL-Cybertools Pilot substitute).

"xGFabric uses the Pilot mechanism from Radical-Cybertools to dynamically
configure the HPC environment for large-scale parallel computations"
(section 3.6). A *pilot* is a placeholder batch job; once the batch system
starts it, an agent inside it executes application tasks directly on the
acquired nodes -- masking queue delay from the application.

This package provides:

* :class:`~repro.pilot.pilot.Pilot` -- lifecycle + in-pilot task execution;
* :class:`~repro.pilot.controller.PilotController` -- the paper's decision
  logic, Eqs (1)-(4), verbatim;
* :mod:`~repro.pilot.strategies` -- on-demand, proactive and reactive
  submission strategies (the proactive/reactive pair is the paper's stated
  future work, built here as an extension and ablated in the benchmarks).
"""

from repro.pilot.task import Task, TaskState
from repro.pilot.pilot import Pilot, PilotState
from repro.pilot.controller import ControllerDecision, PilotController
from repro.pilot.strategies import (
    OnDemandStrategy,
    ProactiveStrategy,
    ReactiveStrategy,
    StrategyStats,
)
from repro.pilot.multisite import MultiSitePilotController, SiteScore

__all__ = [
    "Task",
    "TaskState",
    "Pilot",
    "PilotState",
    "PilotController",
    "ControllerDecision",
    "OnDemandStrategy",
    "ProactiveStrategy",
    "ReactiveStrategy",
    "StrategyStats",
    "MultiSitePilotController",
    "SiteScore",
]
