"""The pilot: a placeholder batch job hosting an in-situ task agent.

"The Pilot controller ... is designed to sidestep [queue delay] by
submitting a pilot placeholder in advance, and then 'activating' the pilot
as needed to achieve real-time response" (section 4.4). Tasks submitted to
an active pilot start immediately on its nodes -- no batch queue -- which is
the entire point.
"""

from __future__ import annotations

from enum import Enum
from typing import Generator, Optional

from repro.hpc.job import Job, JobState
from repro.hpc.site import HpcSite
from repro.pilot.task import Task, TaskState
from repro.simkernel import Engine, Event, Process, Resource


class PilotState(Enum):
    NEW = "new"
    SUBMITTED = "submitted"   # placeholder job queued
    ACTIVE = "active"         # job running; agent accepting tasks
    DONE = "done"             # walltime exhausted or cancelled
    FAILED = "failed"


class Pilot:
    """A pilot job on one site.

    Parameters
    ----------
    engine / site:
        Where the pilot runs.
    nodes:
        Whole nodes the placeholder job requests.
    walltime_s:
        Pilot lifetime once started.
    name:
        Label.
    """

    _counter = 0

    def __init__(
        self,
        engine: Engine,
        site: HpcSite,
        nodes: int,
        walltime_s: float,
        name: Optional[str] = None,
    ) -> None:
        if nodes <= 0:
            raise ValueError("pilot needs at least one node")
        Pilot._counter += 1
        self.engine = engine
        self.site = site
        self.nodes = nodes
        self.walltime_s = walltime_s
        self.name = name or f"pilot-{Pilot._counter}"
        self.state = PilotState.NEW
        self.job: Optional[Job] = None
        self.active: Event = engine.event()
        self.finished: Event = engine.event()
        self._node_pool: Optional[Resource] = None
        self.tasks_run = 0
        self.busy_node_seconds = 0.0
        self.submit_time: Optional[float] = None

    # -- lifecycle ------------------------------------------------------------

    def submit(self) -> "Pilot":
        """Submit the placeholder job to the site's batch queue."""
        if self.state is not PilotState.NEW:
            raise RuntimeError(f"pilot {self.name!r} already submitted")
        self.job = Job(
            name=self.name,
            nodes=self.nodes,
            walltime_s=self.walltime_s,
            # The placeholder occupies its nodes for the full walltime; the
            # agent inside decides what actually runs.
            runtime_s=self.walltime_s,
            user="xgfabric-pilot",
        )
        self.site.submit(self.job)
        self.state = PilotState.SUBMITTED
        self.submit_time = self.engine.now
        self.job.started.add_callback(self._on_started)
        self.job.finished.add_callback(self._on_finished)
        return self

    def cancel(self) -> None:
        """Cancel the placeholder (releasing queued or held nodes)."""
        if self.job is not None and not self.job.is_terminal:
            self.site.cluster.cancel(self.job)

    def _on_started(self, _event) -> None:
        self.state = PilotState.ACTIVE
        self._node_pool = Resource(self.engine, capacity=self.nodes)
        self.active.succeed(self)

    def _on_finished(self, _event) -> None:
        if self.state is not PilotState.FAILED:
            if self.job is not None and self.job.state is JobState.FAILED:
                # The placeholder was killed (node failure, preemption)
                # rather than reaching its walltime.
                self.state = PilotState.FAILED
            else:
                self.state = PilotState.DONE
        if not self.finished.triggered:
            self.finished.succeed(self)

    # -- agent ------------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.state is PilotState.ACTIVE and self.job is not None and (
            self.job.state is JobState.RUNNING
        )

    @property
    def queue_wait_s(self) -> Optional[float]:
        return self.job.queue_wait_s if self.job is not None else None

    def remaining_walltime_s(self) -> float:
        if not self.is_active or self.job is None or self.job.start_time is None:
            return 0.0
        return max(0.0, self.job.start_time + self.walltime_s - self.engine.now)

    def run_task(self, task: Task) -> "Process":
        """Execute a task on this pilot's nodes; returns a process yielding
        the task result. Tasks queue on the pilot's internal node pool (no
        batch system involved)."""
        if task.nodes > self.nodes:
            raise ValueError(
                f"task {task.name!r} wants {task.nodes} nodes; pilot "
                f"{self.name!r} has {self.nodes}"
            )
        task.done = self.engine.event()
        return self.engine.process(
            self._task_body(task), name=f"{self.name}:{task.name}"
        )

    def _task_body(self, task: Task) -> Generator:
        if not self.is_active:
            if self.finished.triggered:
                task.state = TaskState.FAILED
                raise RuntimeError(
                    f"pilot {self.name!r} is {self.state.value}; task "
                    f"{task.name!r} cannot start"
                )
            # Wait for activation (the batch queue) -- or for the pilot to
            # die in the queue (cancellation, node failure), which must not
            # leave the task waiting forever.
            yield self.engine.any_of([self.active, self.finished])
            if not self.is_active:
                task.state = TaskState.FAILED
                raise RuntimeError(
                    f"pilot {self.name!r} terminated before task "
                    f"{task.name!r} started"
                )
        assert self._node_pool is not None
        grant = self._node_pool.request(task.nodes)
        granted = yield self.engine.any_of([grant, self.finished])
        if grant not in granted:
            # Pilot died while the task queued on its node pool; withdraw
            # the request so the pool never grants to a dead waiter.
            grant._abandoned = True
            task.state = TaskState.FAILED
            raise RuntimeError(
                f"pilot {self.name!r} terminated while task {task.name!r} "
                f"waited for nodes"
            )
        try:
            duration = task.duration_on(task.nodes, self.site.cluster.cores_per_node)
            if duration > self.remaining_walltime_s():
                task.state = TaskState.FAILED
                raise RuntimeError(
                    f"task {task.name!r} needs {duration:.0f}s but pilot "
                    f"{self.name!r} has {self.remaining_walltime_s():.0f}s left"
                )
            task.state = TaskState.RUNNING
            task.start_time = self.engine.now
            deadline = self.engine.now + duration
            run = self.engine.timeout(duration)
            outcome = yield self.engine.any_of([run, self.finished])
            if run not in outcome and self.engine.now < deadline:
                # Mid-task pilot death (node failure, preemption): the
                # partial work is lost with the nodes. An exact tie with
                # the pilot's own walltime expiry counts as completion.
                task.state = TaskState.FAILED
                task.end_time = self.engine.now
                raise RuntimeError(
                    f"pilot {self.name!r} died "
                    f"{self.engine.now - task.start_time:.0f}s into task "
                    f"{task.name!r}"
                )
            if task.fn is not None:
                task.result = task.fn()
            task.state = TaskState.DONE
            task.end_time = self.engine.now
            self.tasks_run += 1
            self.busy_node_seconds += duration * task.nodes
            assert task.done is not None
            task.done.succeed(task.result)
            return task.result
        finally:
            self._node_pool.release(task.nodes)

    # -- accounting -------------------------------------------------------------

    def idle_node_seconds(self) -> float:
        """Node-seconds held but not used by tasks, so far."""
        if self.job is None or self.job.start_time is None:
            return 0.0
        end = self.job.end_time if self.job.end_time is not None else self.engine.now
        held = (end - self.job.start_time) * self.nodes
        return max(0.0, held - self.busy_node_seconds)
