"""Application tasks executed inside pilots."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

from repro.simkernel import Event


class TaskState(Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Task:
    """One unit of work for a pilot agent.

    Attributes
    ----------
    name:
        Label, e.g. ``"cfd-epoch-12"``.
    nodes:
        Whole nodes the task occupies within the pilot.
    runtime_s:
        Simulated execution time. May also be supplied by ``runtime_fn``
        at start time (e.g. the CFD performance model evaluated for the
        node count actually granted).
    fn:
        Optional Python payload executed (for real) when the task runs;
        its return value becomes the task result.
    runtime_fn:
        Optional ``(nodes, cores_per_node) -> seconds`` override.
    """

    name: str
    nodes: int = 1
    runtime_s: float = 0.0
    fn: Optional[Callable[[], Any]] = None
    runtime_fn: Optional[Callable[[int, int], float]] = None
    state: TaskState = TaskState.PENDING
    result: Any = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    done: Optional[Event] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError(f"task {self.name!r}: nodes must be positive")
        if self.runtime_s < 0:
            raise ValueError(f"task {self.name!r}: negative runtime")

    def duration_on(self, nodes: int, cores_per_node: int) -> float:
        """Simulated duration given the resources actually granted."""
        if self.runtime_fn is not None:
            return float(self.runtime_fn(nodes, cores_per_node))
        return self.runtime_s
