"""Pilot submission strategies: on-demand, proactive, reactive.

The paper's future work (section 3.6): "we plan to explore proactive
(starting pilots early) and reactive (starting pilots on-time) strategies
... Proactive pilots reduce latency but may incur idle resource overhead,
while reactive pilots minimize idle resources but can introduce startup
delays." Built here as an extension and ablated in
``benchmarks/test_e2e_performance.py``.

All three strategies answer the same interface: ``handle_trigger(task)``
returns a process yielding the task result; :class:`StrategyStats` captures
the latency/idle-cost trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.hpc.site import HpcSite
from repro.pilot.pilot import Pilot
from repro.pilot.task import Task
from repro.simkernel import Engine


@dataclass
class StrategyStats:
    """The latency vs. idle-cost trade-off, per strategy."""

    triggers: int = 0
    total_response_s: float = 0.0   # trigger -> task completion
    total_idle_node_s: float = 0.0  # pilot nodes held without task work

    @property
    def mean_response_s(self) -> float:
        return self.total_response_s / self.triggers if self.triggers else 0.0


class _StrategyBase:
    def __init__(
        self,
        engine: Engine,
        site: HpcSite,
        pilot_nodes: int,
        pilot_walltime_s: float,
    ) -> None:
        if pilot_nodes <= 0 or pilot_walltime_s <= 0:
            raise ValueError("pilot shape must be positive")
        self.engine = engine
        self.site = site
        self.pilot_nodes = pilot_nodes
        self.pilot_walltime_s = pilot_walltime_s
        self.stats = StrategyStats()
        self.pilots: list[Pilot] = []

    def _new_pilot(self) -> Pilot:
        pilot = Pilot(
            self.engine, self.site,
            nodes=self.pilot_nodes, walltime_s=self.pilot_walltime_s,
        ).submit()
        self.pilots.append(pilot)
        return pilot

    def _usable_pilot(self, needed_s: float) -> Optional[Pilot]:
        for pilot in self.pilots:
            if pilot.is_active and pilot.remaining_walltime_s() >= needed_s:
                return pilot
            if pilot.state.value == "submitted":
                return pilot  # queued placeholder will activate
        return None

    def handle_trigger(self, task: Task):
        """Run ``task`` under this strategy; returns a result process."""
        self.stats.triggers += 1
        return self.engine.process(
            self._trigger_body(task), name=f"{type(self).__name__}:{task.name}"
        )

    def _trigger_body(self, task: Task) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def finalize(self) -> StrategyStats:
        """Cancel live pilots and tally idle cost."""
        for pilot in self.pilots:
            self.stats.total_idle_node_s += pilot.idle_node_seconds()
            pilot.cancel()
        return self.stats


class OnDemandStrategy(_StrategyBase):
    """The prototype's behaviour: keep a pilot around, submit one when the
    current one is missing or about to expire. First trigger pays the queue
    delay; later triggers reuse the warm pilot."""

    def _trigger_body(self, task: Task) -> Generator:
        start = self.engine.now
        needed = task.duration_on(task.nodes, self.site.cluster.cores_per_node)
        pilot = self._usable_pilot(needed_s=needed * 1.5)
        if pilot is None:
            pilot = self._new_pilot()
        result = yield pilot.run_task(task)
        self.stats.total_response_s += self.engine.now - start
        return result


class ReactiveStrategy(_StrategyBase):
    """Submit a fresh pilot at each trigger and cancel it after the task:
    zero idle nodes, full queue delay on every trigger."""

    def _trigger_body(self, task: Task) -> Generator:
        start = self.engine.now
        pilot = self._new_pilot()
        result = yield pilot.run_task(task)
        self.stats.total_idle_node_s += pilot.idle_node_seconds()
        self.pilots.remove(pilot)
        pilot.cancel()
        self.stats.total_response_s += self.engine.now - start
        return result


class ProactiveStrategy(_StrategyBase):
    """Keep a warm pilot at all times, renewing before expiry: minimal
    latency, maximal idle-node cost.

    ``start()`` must be called once to begin the keep-warm loop.
    """

    def __init__(self, *args, renew_margin_s: float = 600.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if renew_margin_s < 0:
            raise ValueError("negative renew margin")
        self.renew_margin_s = renew_margin_s
        self._running = False

    def start(self, horizon_s: float) -> None:
        """Run the keep-warm loop for ``horizon_s`` of simulated time."""
        if self._running:
            raise RuntimeError("keep-warm loop already started")
        self._running = True
        self.engine.process(self._keep_warm(horizon_s), name="proactive-keep-warm")

    def _keep_warm(self, horizon_s: float) -> Generator:
        end = self.engine.now + horizon_s
        self._new_pilot()
        while self.engine.now < end:
            # Renew when the freshest pilot nears expiry.
            live = [p for p in self.pilots if not p.finished.triggered]
            margin = max(
                (p.remaining_walltime_s() for p in live if p.is_active),
                default=0.0,
            )
            if not live or margin < self.renew_margin_s:
                self._new_pilot()
            yield self.engine.timeout(
                max(60.0, margin - self.renew_margin_s / 2)
            )

    def _trigger_body(self, task: Task) -> Generator:
        start = self.engine.now
        needed = task.duration_on(task.nodes, self.site.cluster.cores_per_node)
        pilot = self._usable_pilot(needed_s=needed)
        if pilot is None:
            pilot = self._new_pilot()  # keep-warm fell behind: degrade gracefully
        result = yield pilot.run_task(task)
        self.stats.total_response_s += self.engine.now - start
        return result
