"""Multi-site pilot placement.

Section 4.3: "Future deployments of xGFabric will make use of varying HPC
sites in order to exploit the changing availability and performance of
different facilities." This module builds that deployment: a
:class:`MultiSitePilotController` that estimates each facility's current
responsiveness and places pilots on the best one, failing over when a
site's queue deepens or its pilots expire.

Site scoring is deliberately simple and observable: expected response =
estimated queue delay (from the site's recent queue-wait statistics and
instantaneous free capacity) + the task's modeled runtime on that site's
node shape. No oracle knowledge -- only what a real controller could poll
from ``squeue``/``qstat``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfd.perfmodel import CfdPerformanceModel
from repro.hpc.site import HpcSite
from repro.pilot.controller import PilotController
from repro.pilot.pilot import Pilot
from repro.simkernel import Engine


@dataclass(frozen=True)
class SiteScore:
    """One facility's estimated responsiveness for the next task."""

    site_name: str
    free_nodes: int
    est_queue_delay_s: float
    est_runtime_s: float

    @property
    def est_response_s(self) -> float:
        return self.est_queue_delay_s + self.est_runtime_s


class MultiSitePilotController:
    """Places pilots across several facilities.

    Parameters
    ----------
    engine:
        Shared simulation engine (all sites must live on it).
    sites:
        Candidate facilities.
    cores_per_task:
        Core count the CFD task wants (64 in the paper).
    threshold_bytes / walltime_factor:
        Passed through to each site's per-site controller (Eqs 1-4 still
        govern sizing within a site).
    """

    def __init__(
        self,
        engine: Engine,
        sites: dict[str, HpcSite],
        cores_per_task: int = 64,
        threshold_bytes: float = 2.0e6,
        walltime_factor: float = 8.0,
    ) -> None:
        if not sites:
            raise ValueError("need at least one site")
        if cores_per_task < 1:
            raise ValueError("cores_per_task must be >= 1")
        self.engine = engine
        self.sites = dict(sites)
        self.cores_per_task = cores_per_task
        self._models = {
            name: CfdPerformanceModel(cores_per_node=site.cluster.cores_per_node)
            for name, site in sites.items()
        }
        self._controllers = {
            name: PilotController(
                engine,
                site,
                threshold_bytes=threshold_bytes,
                task_runtime_estimate_s=self._models[name].total_time(
                    cores_per_task
                ),
                walltime_factor=walltime_factor,
            )
            for name, site in sites.items()
        }
        self.placements: list[tuple[float, str]] = []

    # -- scoring ----------------------------------------------------------------

    def nodes_for_task(self, site: HpcSite) -> int:
        return max(
            1, -(-self.cores_per_task // site.cluster.cores_per_node)
        )

    def score(self, name: str) -> SiteScore:
        """Estimate a site's response time for the next task."""
        site = self.sites[name]
        nodes_needed = self.nodes_for_task(site)
        free = site.cluster.free_nodes
        mean_wait, _ = site.cluster.queue_wait_stats()
        controller = self._controllers[name]
        if controller.best_pilot_for(nodes_needed) is not None:
            est_delay = 0.0  # a warm pilot answers immediately
        elif free >= nodes_needed and not site.cluster.pending_jobs:
            est_delay = 0.0  # empty machine: a fresh pilot starts at once
        else:
            # No free capacity: recent queue behaviour is the best estimate.
            est_delay = max(mean_wait, 300.0)
        runtime = self._models[name].total_time(
            self.cores_per_task, nodes=nodes_needed
        )
        return SiteScore(
            site_name=name,
            free_nodes=free,
            est_queue_delay_s=est_delay,
            est_runtime_s=runtime,
        )

    def rank_sites(self) -> list[SiteScore]:
        """All sites, best (lowest estimated response) first."""
        scores = [self.score(name) for name in self.sites]
        return sorted(scores, key=lambda s: (s.est_response_s, s.site_name))

    # -- placement ---------------------------------------------------------------

    def acquire_pilot(self, data_size_bytes: float) -> tuple[str, Pilot]:
        """Pick the best site, run its Eq (1)-(4) controller, return the
        pilot to submit the task to."""
        best = self.rank_sites()[0]
        controller = self._controllers[best.site_name]
        controller.retire_finished()
        controller.on_data(data_size_bytes)
        nodes_needed = self.nodes_for_task(self.sites[best.site_name])
        pilot = controller.best_pilot_for(nodes_needed)
        if pilot is None:
            pilot = controller.pilots[-1]
        self.placements.append((self.engine.now, best.site_name))
        return best.site_name, pilot

    def controller_for(self, name: str) -> PilotController:
        try:
            return self._controllers[name]
        except KeyError:
            raise KeyError(
                f"unknown site {name!r}; have {sorted(self._controllers)}"
            ) from None

    def placement_counts(self) -> dict[str, int]:
        counts = {name: 0 for name in self.sites}
        for _, name in self.placements:
            counts[name] += 1
        return counts
