"""The Pilot Controller: the paper's Eqs (1)-(4), verbatim.

Section 3.6's decision logic, on each incoming batch of data:

1. Assess incoming data size D and choose nodes:
       N_req = max(1, D / threshold)                              (1)
2. Evaluate currently available nodes:
       N_avail = sum over active pilots of nodes(p)               (2)
3. Decide whether to submit a new pilot:
       submit iff N_avail < N_req                                 (3)
4. Determine pilot submission parameters:
       nodes    = min(system nodes, N_req)                        (4)
       runtime  = min(max system runtime, estimated task runtime)

"The Pilot Controller currently initiates an initial pilot using a single
node" -- :meth:`PilotController.bootstrap`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.hpc.site import HpcSite
from repro.obs.trace import NULL_TRACER, Tracer
from repro.pilot.pilot import Pilot, PilotState
from repro.simkernel import Engine


@dataclass(frozen=True)
class ControllerDecision:
    """Record of one controller evaluation (for tests and reporting)."""

    data_size: float
    n_req: int
    n_avail: int
    submitted: bool
    pilot_nodes: int = 0
    pilot_walltime_s: float = 0.0


class PilotController:
    """Dynamic pilot resource allocation over one site.

    Parameters
    ----------
    engine / site:
        Where pilots are placed.
    threshold_bytes:
        The per-node data threshold of Eq. (1).
    task_runtime_estimate_s:
        The "estimated task runtime" of Eq. (4); pilots are sized to hold
        several tasks, controlled by ``walltime_factor``.
    walltime_factor:
        Pilot walltime = estimate x factor (a pilot that dies after one
        task would reintroduce the queue delay on every trigger).
    """

    def __init__(
        self,
        engine: Engine,
        site: HpcSite,
        threshold_bytes: float,
        task_runtime_estimate_s: float,
        walltime_factor: float = 4.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if threshold_bytes <= 0:
            raise ValueError("threshold must be positive")
        if task_runtime_estimate_s <= 0:
            raise ValueError("task runtime estimate must be positive")
        if walltime_factor < 1.0:
            raise ValueError("walltime_factor must be >= 1")
        self.engine = engine
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.site = site
        self.threshold_bytes = threshold_bytes
        self.task_runtime_estimate_s = task_runtime_estimate_s
        self.walltime_factor = walltime_factor
        self.pilots: list[Pilot] = []
        self.decisions: list[ControllerDecision] = []

    # -- Eq (1) ---------------------------------------------------------------

    def nodes_required(self, data_size_bytes: float) -> int:
        if data_size_bytes < 0:
            raise ValueError(f"negative data size: {data_size_bytes}")
        return max(1, math.ceil(data_size_bytes / self.threshold_bytes))

    # -- Eq (2) ---------------------------------------------------------------

    def nodes_available(self) -> int:
        return sum(
            p.nodes
            for p in self.pilots
            if p.state in (PilotState.SUBMITTED, PilotState.ACTIVE)
        )

    # -- Eqs (3)+(4) -------------------------------------------------------------

    def on_data(self, data_size_bytes: float) -> ControllerDecision:
        """Evaluate the decision logic for an incoming data batch.

        Returns the decision record; when Eq. (3) says submit, the new pilot
        has been submitted as a side effect.
        """
        n_req = self.nodes_required(data_size_bytes)
        n_avail = self.nodes_available()
        if n_avail >= n_req:
            decision = ControllerDecision(
                data_size=data_size_bytes, n_req=n_req, n_avail=n_avail,
                submitted=False,
            )
            self.decisions.append(decision)
            self._observe_decision(decision)
            return decision
        nodes = min(self.site.cluster.total_nodes, n_req)
        walltime = min(
            self.site.cluster.max_walltime_s,
            self.task_runtime_estimate_s * self.walltime_factor,
        )
        pilot = Pilot(
            self.engine, self.site, nodes=nodes, walltime_s=walltime
        ).submit()
        self.pilots.append(pilot)
        decision = ControllerDecision(
            data_size=data_size_bytes, n_req=n_req, n_avail=n_avail,
            submitted=True, pilot_nodes=nodes, pilot_walltime_s=walltime,
        )
        self.decisions.append(decision)
        self._observe_decision(decision)
        return decision

    def _observe_decision(self, decision: ControllerDecision) -> None:
        """Record one controller evaluation into the tracer's metrics."""
        tr = self.tracer
        if not tr.enabled:
            return
        m = tr.metrics
        m.counter("pilot.decisions", help="Eq (3) evaluations").inc(
            site=self.site.name, submitted=str(decision.submitted).lower()
        )
        m.gauge(
            "pilot.nodes_available", help="Eq (2) at last evaluation"
        ).set(decision.n_avail, site=self.site.name)
        if decision.submitted:
            m.counter("pilot.nodes_submitted", help="pilot nodes requested").inc(
                decision.pilot_nodes, site=self.site.name
            )

    def bootstrap(self) -> Pilot:
        """Submit the initial single-node pilot the paper describes."""
        walltime = min(
            self.site.cluster.max_walltime_s,
            self.task_runtime_estimate_s * self.walltime_factor,
        )
        pilot = Pilot(self.engine, self.site, nodes=1, walltime_s=walltime).submit()
        self.pilots.append(pilot)
        tr = self.tracer
        if tr.enabled:
            tr.metrics.counter(
                "pilot.nodes_submitted", help="pilot nodes requested"
            ).inc(1, site=self.site.name)
        return pilot

    def best_pilot_for(self, nodes: int) -> Optional[Pilot]:
        """The active pilot with enough capacity, preferring tightest fit."""
        candidates = [
            p for p in self.pilots if p.is_active and p.nodes >= nodes
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda p: (p.nodes, -p.remaining_walltime_s()))

    def retire_finished(self) -> int:
        """Drop terminal pilots from the active list; returns count dropped."""
        before = len(self.pilots)
        self.pilots = [
            p for p in self.pilots
            if p.state not in (PilotState.DONE, PilotState.FAILED)
        ]
        return before - len(self.pilots)
