"""User-equipment host device models (laptop, Raspberry Pi, smartphone).

The host contributes processing/attachment constraints on top of the modem:
USB bus generation and power delivery, driver stack efficiency, and thermal
behaviour. These are what separate the three device curves in Figs. 4-5.

Calibration (documented in :mod:`repro.radio.presets`) encodes each host's
per-mode *efficiency* (realized fraction of granted PHY rate) and *cap*
(hard ceiling), plus per-modem attachment caps for the pathological
SIM7600G-H USB-2 dongle cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.radio.duplex import DuplexMode
from repro.radio.modems import Modem

_UNLIMITED = float("inf")


class DeviceClass(Enum):
    LAPTOP = "laptop"
    RASPBERRY_PI = "raspberry-pi"
    SMARTPHONE = "smartphone"


def _key(technology: str, duplex: DuplexMode) -> str:
    return f"{technology.lower()}-{duplex.value}"


@dataclass(frozen=True)
class Device:
    """A UE host device.

    Attributes
    ----------
    name:
        Human-readable model.
    device_class:
        Laptop / Raspberry Pi / smartphone.
    efficiency_by_mode:
        Realized fraction of the granted PHY rate, per ``"nr-tdd"``-style key.
    uplink_cap_by_mode:
        Host-side hard uplink ceiling per mode (bits/s).
    modem_attach_caps:
        Hard caps keyed by modem name, for attachments whose USB/power
        combination dominates (e.g. SIM7600G-H on a Raspberry Pi).
    usb_generation:
        Highest USB generation the host offers to an external modem.
    """

    name: str
    device_class: DeviceClass
    efficiency_by_mode: dict[str, float] = field(default_factory=dict)
    uplink_cap_by_mode: dict[str, float] = field(default_factory=dict)
    modem_attach_caps: dict[str, float] = field(default_factory=dict)
    usb_generation: int = 3

    def __post_init__(self) -> None:
        for mode, eff in self.efficiency_by_mode.items():
            if not 0.0 < eff <= 1.0:
                raise ValueError(f"{self.name}: efficiency for {mode} out of (0,1]: {eff}")
        if self.usb_generation not in (2, 3):
            raise ValueError(f"usb_generation must be 2 or 3: {self.usb_generation}")

    def efficiency(self, technology: str, duplex: DuplexMode) -> float:
        return self.efficiency_by_mode.get(_key(technology, duplex), 0.9)

    def uplink_cap_bps(self, technology: str, duplex: DuplexMode) -> float:
        return self.uplink_cap_by_mode.get(_key(technology, duplex), _UNLIMITED)

    def attach_cap_bps(self, modem: Modem) -> float:
        """Hard cap imposed by this host's attachment of ``modem``."""
        return self.modem_attach_caps.get(modem.name, _UNLIMITED)


# ---------------------------------------------------------------------------
# Presets. Efficiency/cap values are calibrated so single-user uplink lands
# on the paper's Fig. 4 anchors; see presets.py for the anchor table.
# ---------------------------------------------------------------------------

LAPTOP = Device(
    name="laptop",
    device_class=DeviceClass.LAPTOP,
    efficiency_by_mode={"lte-fdd": 1.0, "nr-fdd": 0.80, "nr-tdd": 0.86},
    uplink_cap_by_mode={"nr-fdd": 41.0e6},
    # SIM7600G-H over the laptop's USB stack plateaus near 10.5 Mbps uplink.
    modem_attach_caps={"SIM7600G-H": 10.5e6},
    usb_generation=3,
)

RASPBERRY_PI = Device(
    name="raspberry-pi-4",
    device_class=DeviceClass.RASPBERRY_PI,
    efficiency_by_mode={"lte-fdd": 1.0, "nr-fdd": 0.78, "nr-tdd": 0.97},
    uplink_cap_by_mode={},
    # The RPi's shared USB2 bus + power budget strangles the 4G dongle.
    modem_attach_caps={"SIM7600G-H": 2.3e6},
    usb_generation=3,
)

#: The development network's UEs are Raspberry Pi 5 units: faster host,
#: PCIe-attached USB3 controller, so slightly better NR efficiency than
#: the production RPi4s.
RASPBERRY_PI_5 = Device(
    name="raspberry-pi-5",
    device_class=DeviceClass.RASPBERRY_PI,
    efficiency_by_mode={"lte-fdd": 1.0, "nr-fdd": 0.82, "nr-tdd": 0.97},
    uplink_cap_by_mode={},
    modem_attach_caps={"SIM7600G-H": 3.0e6},
    usb_generation=3,
)

SMARTPHONE = Device(
    name="pixel-6a",
    device_class=DeviceClass.SMARTPHONE,
    efficiency_by_mode={"lte-fdd": 0.91, "nr-fdd": 0.85, "nr-tdd": 0.90},
    uplink_cap_by_mode={},
    modem_attach_caps={},
    usb_generation=3,
)
