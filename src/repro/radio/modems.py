"""Cellular modem models.

The paper's device-type differences (Fig. 4/5) are dominated by the modem and
its host attachment: the SIM7600G-H 4G USB modem bottlenecks hard (and
differently on a laptop vs. a Raspberry Pi), the RM530N-GL 5G modem is
comfortable at the tested bandwidths, and the Pixel 6a's internal modem is
excellent on 4G/5G FDD but underperforms badly on the private network's TDD
uplink configuration (14.4 Mbps at 50 MHz vs. the RPi's 66).

A modem contributes two things to the throughput pipeline:

* ``efficiency(technology, duplex)`` -- a multiplicative factor on the PHY
  share actually realized (protocol/implementation efficiency), and
* ``uplink_cap_bps(technology, duplex)`` -- a hard ceiling (category limit,
  USB attachment, band support).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.radio.duplex import DuplexMode

_UNLIMITED = float("inf")


def _key(technology: str, duplex: DuplexMode) -> str:
    return f"{technology.lower()}-{duplex.value}"


@dataclass(frozen=True)
class Modem:
    """A cellular modem with per-(technology, duplex) behaviour.

    Attributes
    ----------
    name:
        Marketing name (e.g. ``"RM530N-GL"``).
    supported:
        Set of ``"lte-fdd"``-style keys the modem can attach on.
    efficiency_by_mode:
        Realized fraction of the granted PHY share, per mode key. Captures
        implementation quality, HARQ/BLER operating point, and power class.
    uplink_cap_by_mode:
        Hard uplink ceiling (bits/s) per mode key; ``inf`` when the modem is
        not the bottleneck.
    usb_generation:
        2 or 3; interacts with the host device's USB capability.
    """

    name: str
    supported: frozenset[str]
    efficiency_by_mode: dict[str, float] = field(default_factory=dict)
    uplink_cap_by_mode: dict[str, float] = field(default_factory=dict)
    usb_generation: int = 3

    def __post_init__(self) -> None:
        for mode, eff in self.efficiency_by_mode.items():
            if not 0.0 < eff <= 1.0:
                raise ValueError(f"{self.name}: efficiency for {mode} out of (0,1]: {eff}")
        if self.usb_generation not in (2, 3):
            raise ValueError(f"usb_generation must be 2 or 3, got {self.usb_generation}")

    def supports(self, technology: str, duplex: DuplexMode) -> bool:
        return _key(technology, duplex) in self.supported

    def efficiency(self, technology: str, duplex: DuplexMode) -> float:
        """Realized fraction of the granted PHY rate."""
        self._check(technology, duplex)
        return self.efficiency_by_mode.get(_key(technology, duplex), 0.9)

    def uplink_cap_bps(self, technology: str, duplex: DuplexMode) -> float:
        """Hard uplink throughput ceiling in bits/s."""
        self._check(technology, duplex)
        return self.uplink_cap_by_mode.get(_key(technology, duplex), _UNLIMITED)

    def _check(self, technology: str, duplex: DuplexMode) -> None:
        if not self.supports(technology, duplex):
            raise ValueError(
                f"modem {self.name} does not support {technology}/{duplex.value}"
            )


#: Waveshare SIM7600G-H LTE cat-4 USB dongle. Its uplink is officially
#: 50 Mbps (cat-4) but through the USB CDC stack it sustains far less; the
#: paper's laptop plateaus near 10-11 Mbps past 10 MHz and the RPi (USB2 +
#: power constraints) near 2.2 Mbps (Fig. 4, 4G panels).
SIM7600G_H = Modem(
    name="SIM7600G-H",
    supported=frozenset({"lte-fdd"}),
    efficiency_by_mode={"lte-fdd": 0.82},
    uplink_cap_by_mode={"lte-fdd": 22e6},
    usb_generation=2,
)

#: Quectel RM530N-GL 5G (3GPP rel-16) modem; not a bottleneck at the tested
#: bandwidths on a capable host.
RM530N_GL = Modem(
    name="RM530N-GL",
    supported=frozenset({"nr-fdd", "nr-tdd", "lte-fdd"}),
    efficiency_by_mode={"nr-fdd": 0.97, "nr-tdd": 0.97, "lte-fdd": 0.95},
    uplink_cap_by_mode={},
    usb_generation=3,
)

#: A flagship phone's integrated 4G modem: best-in-class LTE uplink.
PHONE_4G_INTERNAL = Modem(
    name="phone-internal-4g",
    supported=frozenset({"lte-fdd"}),
    efficiency_by_mode={"lte-fdd": 1.0},
    uplink_cap_by_mode={},
)

#: The Pixel 6a's integrated 5G modem: strong on FDD, but its uplink on the
#: private network's n78-style TDD configuration is crippled (single TX
#: chain / power class on that band combination) -- the paper measures
#: 14.4 Mbps at 50 MHz where the RPi reaches 66 (Fig. 4, 5G TDD panel).
PHONE_5G_INTERNAL = Modem(
    name="phone-internal-5g",
    supported=frozenset({"nr-fdd", "nr-tdd", "lte-fdd"}),
    efficiency_by_mode={"nr-fdd": 1.0, "nr-tdd": 0.95, "lte-fdd": 1.0},
    uplink_cap_by_mode={"nr-tdd": 15e6},
)
