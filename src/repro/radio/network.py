"""Deployment builder: assemble complete private cellular networks.

Mirrors the testbed's structure: one compute host runs both a *development*
and a *production* network instance, each with its own gNB + SDR + core
(section 3.3). :class:`NetworkDeployment` builds the three network flavours
used across the evaluation (4G FDD, 5G FDD, 5G TDD) with SIM provisioning,
registration, and PDU-session establishment handled end to end, so tests
and benchmarks exercise the full attach pipeline rather than jumping
straight to throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.radio.channel import ChannelModel
from repro.radio.core5g import Core5G, RegistrationError, SessionError
from repro.radio.devices import (
    Device,
    LAPTOP,
    RASPBERRY_PI,
    RASPBERRY_PI_5,
    SMARTPHONE,
)
from repro.radio.duplex import DuplexMode, TDD_UL_HEAVY
from repro.radio.gnb import GNodeB
from repro.radio.iperf import IperfResult, run_uplink_test
from repro.radio.modems import (
    Modem,
    PHONE_4G_INTERNAL,
    PHONE_5G_INTERNAL,
    RM530N_GL,
    SIM7600G_H,
)
from repro.radio.phy import CarrierConfig
from repro.radio.presets import LTE_CHANNEL, NR_CHANNEL, SDR_4G, SDR_5G
from repro.radio.scheduler import MacScheduler, ProportionalFairScheduler, RoundRobinScheduler
from repro.radio.sim_cards import SimProvisioner
from repro.radio.slicing import SliceConfig
from repro.radio.ue import UserEquipment

#: Device-class name -> (device preset, 4G modem, 5G modem).
_DEVICE_KITS: dict[str, tuple[Device, Modem, Modem]] = {
    "laptop": (LAPTOP, SIM7600G_H, RM530N_GL),
    "raspberry-pi": (RASPBERRY_PI, SIM7600G_H, RM530N_GL),
    "raspberry-pi-5": (RASPBERRY_PI_5, SIM7600G_H, RM530N_GL),
    "smartphone": (SMARTPHONE, PHONE_4G_INTERNAL, PHONE_5G_INTERNAL),
}


def device_kit(device_class: str) -> tuple[Device, Modem, Modem]:
    """Return (device, 4G modem, 5G modem) for a device-class name."""
    try:
        return _DEVICE_KITS[device_class]
    except KeyError:
        raise ValueError(
            f"unknown device class {device_class!r}; "
            f"valid: {sorted(_DEVICE_KITS)}"
        ) from None


@dataclass
class PrivateCellularNetwork:
    """One deployed network instance: gNB + core + provisioner."""

    name: str
    gnb: GNodeB
    core: Core5G
    provisioner: SimProvisioner
    ues: list[UserEquipment] = field(default_factory=list)

    def add_ue(
        self,
        device_class: str,
        ue_id: Optional[str] = None,
        channel: Optional[ChannelModel] = None,
        unit_cap_bps: Optional[float] = None,
        slice_name: Optional[str] = None,
    ) -> UserEquipment:
        """Provision a SIM, build a UE, register it, and open its session.

        This walks the full attach pipeline: SIM provisioning -> AKA
        authentication -> registration -> PDU session (slice-bound) ->
        radio attach.
        """
        device, modem_4g, modem_5g = device_kit(device_class)
        tech = self.gnb.carrier.technology
        modem = modem_4g if tech == "lte" else modem_5g
        default_channel = LTE_CHANNEL if tech == "lte" else NR_CHANNEL
        sim = self.provisioner.provision()
        ue = UserEquipment(
            ue_id=ue_id or f"{device_class}-{len(self.ues) + 1}",
            device=device,
            modem=modem,
            sim=sim,
            channel=channel or default_channel,
            unit_cap_bps=unit_cap_bps,
            slice_name=slice_name,
        )
        self.core.register(sim)
        ue.session = self.core.establish_session(sim.imsi, slice_name=slice_name)
        self.gnb.attach(ue)
        self.ues.append(ue)
        return ue

    def remove_ue(self, ue: UserEquipment) -> None:
        self.gnb.detach(ue.ue_id)
        if ue.session is not None:
            self.core.release_session(ue.sim.imsi, ue.session.session_id)
            ue.session = None
        self.ues.remove(ue)

    def detach_ue(self, ue: UserEquipment) -> None:
        """Drop a UE from the cell without forgetting it (power loss, RF
        outage). The UE stays provisioned and listed; its PDU session is
        released so routing fails until :meth:`recover_ue`. Idempotent:
        detaching an already-dark UE (overlapping faults) is a no-op."""
        if ue not in self.ues:
            raise ValueError(f"UE {ue.ue_id!r} is not on network {self.name!r}")
        if ue.ue_id in {u.ue_id for u in self.gnb.attached_ues}:
            self.gnb.detach(ue.ue_id)
        if ue.session is not None:
            try:
                self.core.release_session(ue.sim.imsi, ue.session.session_id)
            except (RegistrationError, SessionError):
                # The core already dropped it (e.g. a deregistration fault
                # landed first); just reflect that locally.
                ue.session.active = False
            ue.session = None

    def recover_ue(self, ue: UserEquipment) -> UserEquipment:
        """Re-attach a detached UE: re-register (idempotent), open a fresh
        PDU session on its slice, and attach to the cell."""
        if ue not in self.ues:
            raise ValueError(f"UE {ue.ue_id!r} is not on network {self.name!r}")
        if ue.attached:
            return ue
        self.core.register(ue.sim)
        ue.session = self.core.establish_session(
            ue.sim.imsi, slice_name=ue.slice_name
        )
        if ue.ue_id not in {u.ue_id for u in self.gnb.attached_ues}:
            # A session-only drop (core deregistration) leaves the radio
            # attachment in place; only re-attach after a true detach.
            self.gnb.attach(ue)
        return ue

    def measure_uplink(
        self,
        ues: list[UserEquipment],
        rng: np.random.Generator,
        n_samples: int = 100,
    ) -> dict[str, IperfResult]:
        """Run the paper's iperf3 procedure from the given UEs."""
        return run_uplink_test(self.gnb, self.core, ues, rng, n_samples=n_samples)


class NetworkDeployment:
    """Factory for the evaluation's three network flavours."""

    @staticmethod
    def build(
        network: str,
        bandwidth_mhz: float,
        slice_config: Optional[SliceConfig] = None,
        scheduler: Optional[MacScheduler] = None,
        name: Optional[str] = None,
        mnc: str = "70",
    ) -> PrivateCellularNetwork:
        """Build a network instance.

        Parameters
        ----------
        network:
            ``"4g-fdd"``, ``"5g-fdd"`` or ``"5g-tdd"``.
        bandwidth_mhz:
            Carrier bandwidth; must be valid for the technology/numerology.
        slice_config:
            Optional PRB slicing (5G only -- the paper's slicing experiments
            run on the 5G TDD cell).
        scheduler:
            MAC discipline override. Default: proportional-fair for the 4G
            cell (whose two-user runs show uneven allocation), round-robin
            for 5G (whose runs show fair sharing).
        """
        key = network.lower()
        if key == "4g-fdd":
            carrier = CarrierConfig("lte", bandwidth_mhz, DuplexMode.FDD)
            sdr = SDR_4G
            default_sched: MacScheduler = ProportionalFairScheduler()
        elif key == "5g-fdd":
            carrier = CarrierConfig("nr", bandwidth_mhz, DuplexMode.FDD)
            sdr = SDR_5G
            default_sched = RoundRobinScheduler()
        elif key == "5g-tdd":
            carrier = CarrierConfig(
                "nr", bandwidth_mhz, DuplexMode.TDD, tdd_pattern=TDD_UL_HEAVY
            )
            sdr = SDR_5G
            default_sched = RoundRobinScheduler()
        else:
            raise ValueError(
                f"unknown network {network!r}; valid: 4g-fdd, 5g-fdd, 5g-tdd"
            )
        if slice_config is not None and key == "4g-fdd":
            raise ValueError("network slicing is a 5G capability")

        provisioner = SimProvisioner(mnc=mnc)
        slice_names = (
            tuple(s.name for s in slice_config) if slice_config else ("default",)
        )
        core = Core5G(provisioner, slice_names=slice_names)
        gnb = GNodeB(
            name=name or f"gnb-{key}-{int(bandwidth_mhz)}mhz",
            carrier=carrier,
            sdr=sdr,
            scheduler=scheduler or default_sched,
            slice_config=slice_config,
        )
        return PrivateCellularNetwork(
            name=name or key, gnb=gnb, core=core, provisioner=provisioner
        )

    @staticmethod
    def build_testbed(
        bandwidth_mhz: float = 40.0,
    ) -> dict[str, PrivateCellularNetwork]:
        """The paper's two parallel private 5G instances on one host.

        Section 3.3: "the development instance [connects] a Google Pixel 6a
        ... and two Raspberry Pi 5 devices ... In the production instance,
        we connect two Raspberry Pi 4 units" -- the development network for
        "safe testing of new features such as network slicing", production
        as "a consistent baseline". Both run 5G SA with their own gNB, SDR
        front end, core, and SIM universe; the evaluation's numbers come
        from production.
        """
        # Distinct MNCs per instance: the two cores are separate PLMNs, so
        # identities never collide across the parallel networks.
        dev = NetworkDeployment.build(
            "5g-tdd", bandwidth_mhz, name="development", mnc="70"
        )
        dev.add_ue("smartphone", ue_id="dev-pixel-6a")
        dev.add_ue("raspberry-pi-5", ue_id="dev-rpi5-1")
        dev.add_ue("raspberry-pi-5", ue_id="dev-rpi5-2")

        prod = NetworkDeployment.build(
            "5g-tdd", bandwidth_mhz, name="production", mnc="71"
        )
        prod.add_ue("raspberry-pi", ue_id="prod-rpi4-1")
        prod.add_ue("raspberry-pi", ue_id="prod-rpi4-2")
        return {"development": dev, "production": prod}
