"""iperf3-style uplink throughput measurement.

The paper's Figures 4-6 are built from "100 iperf3 uplink throughput
samples" per configuration. :func:`run_uplink_test` reproduces that
procedure against a simulated cell: it saturates the uplink from one or more
UEs, collects per-second samples, accounts the bytes through the 5G core's
user plane, and returns summary statistics in the same form the paper's
plotting notebook consumes (mean/std over samples, in Mbps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.radio.core5g import Core5G
from repro.radio.gnb import GNodeB
from repro.radio.ue import UserEquipment


@dataclass(frozen=True)
class IperfResult:
    """Summary of one UE's uplink test.

    Attributes mirror the fields of iperf3's JSON output that the paper's
    visualization notebook parses (bits per second, per-interval samples).
    """

    ue_id: str
    samples_bps: np.ndarray
    duration_s: float

    @property
    def mean_mbps(self) -> float:
        return float(np.mean(self.samples_bps)) / 1e6

    @property
    def std_mbps(self) -> float:
        return float(np.std(self.samples_bps, ddof=1)) / 1e6

    @property
    def total_bytes(self) -> int:
        return int(np.sum(self.samples_bps) / 8.0)

    def to_json_dict(self) -> dict[str, object]:
        """Shape-compatible subset of iperf3's ``--json`` output."""
        return {
            "start": {"test_start": {"duration": self.duration_s}},
            "intervals": [
                {"sum": {"bits_per_second": float(bps), "seconds": 1.0}}
                for bps in self.samples_bps
            ],
            "end": {
                "sum_sent": {
                    "bytes": self.total_bytes,
                    "bits_per_second": float(np.mean(self.samples_bps)),
                }
            },
        }


@dataclass
class IperfClient:
    """A saturating uplink traffic source bound to one UE."""

    ue: UserEquipment

    def run(
        self,
        gnb: GNodeB,
        core: Core5G,
        rng: np.random.Generator,
        n_samples: int = 100,
        metrics: Optional[MetricsRegistry] = None,
    ) -> IperfResult:
        """Single-UE convenience wrapper over :func:`run_uplink_test`."""
        results = run_uplink_test(
            gnb, core, [self.ue], rng, n_samples=n_samples, metrics=metrics
        )
        return results[self.ue.ue_id]


def run_uplink_test(
    gnb: GNodeB,
    core: Core5G,
    ues: list[UserEquipment],
    rng: np.random.Generator,
    n_samples: int = 100,
    metrics: Optional[MetricsRegistry] = None,
) -> dict[str, IperfResult]:
    """Run simultaneous saturating uplink tests from ``ues``.

    All listed UEs must be attached to ``gnb`` and hold active PDU sessions
    (the bytes are accounted through the core's UPF, as real iperf3 traffic
    would be). When ``metrics`` is given, each UE's per-second samples are
    recorded as a ``radio.ue_throughput_mbps`` series (the paper's
    Figures 4-6 raw data).
    """
    return _run_test(gnb, core, ues, rng, n_samples, direction="uplink",
                     metrics=metrics)


def run_downlink_test(
    gnb: GNodeB,
    core: Core5G,
    ues: list[UserEquipment],
    rng: np.random.Generator,
    n_samples: int = 100,
    metrics: Optional[MetricsRegistry] = None,
) -> dict[str, IperfResult]:
    """Run simultaneous saturating downlink tests toward ``ues``
    (``iperf3 -R``). Bytes are accounted as downlink through the UPF."""
    return _run_test(gnb, core, ues, rng, n_samples, direction="downlink",
                     metrics=metrics)


def _run_test(
    gnb: GNodeB,
    core: Core5G,
    ues: list[UserEquipment],
    rng: np.random.Generator,
    n_samples: int,
    direction: str,
    metrics: Optional[MetricsRegistry] = None,
) -> dict[str, IperfResult]:
    if not ues:
        raise ValueError("need at least one UE")
    for ue in ues:
        if not ue.attached:
            raise ValueError(f"UE {ue.ue_id} has no active PDU session")
    ue_ids = [ue.ue_id for ue in ues]
    if direction == "uplink":
        sample_map = gnb.uplink_samples(rng, n_samples, ue_ids)
    else:
        sample_map = gnb.downlink_samples(rng, n_samples, ue_ids)
    results: dict[str, IperfResult] = {}
    for ue in ues:
        samples = sample_map[ue.ue_id]
        result = IperfResult(
            ue_id=ue.ue_id, samples_bps=samples, duration_s=float(n_samples)
        )
        assert ue.session is not None
        if direction == "uplink":
            core.route_uplink(ue.session, result.total_bytes)
        else:
            core.route_downlink(ue.session, result.total_bytes)
        if metrics is not None:
            series = metrics.series(
                "radio.ue_throughput_mbps",
                help="per-second iperf-style throughput samples per UE",
            )
            series.extend(
                np.arange(len(samples), dtype=np.float64), samples / 1e6,
                cell=gnb.name, ue=ue.ue_id, direction=direction,
            )
            metrics.gauge(
                "radio.ue_mean_mbps", help="mean throughput of the last test"
            ).set(
                result.mean_mbps,
                cell=gnb.name, ue=ue.ue_id, direction=direction,
            )
        results[ue.ue_id] = result
    return results
