"""SIM card provisioning and AKA-style authentication.

Substitutes the testbed's programmable sysmoISIM-SJA5 cards provisioned with
the osmocom ``pysim`` toolkit. A :class:`SimProvisioner` plays the role of
``pysim``: it writes subscriber identities (IMSI) and long-term secrets
(K, OPc) onto cards and registers the same credentials with the core's
subscriber database, "allowing for flexible and consistent identity
management across both environments" (paper section 3.3).

Authentication follows the shape of 5G-AKA: the network issues a challenge
(RAND), both sides derive an expected response from (K, OPc, RAND) with a
keyed hash, and registration succeeds only when the responses match. We use
HMAC-SHA256 in place of MILENAGE; the protocol structure -- and therefore
every failure mode the upper layers can observe -- is the same.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass


class AuthenticationError(Exception):
    """Raised when AKA challenge-response fails (wrong K/OPc, unknown IMSI)."""


@dataclass(frozen=True)
class SimCard:
    """A provisioned SIM: identity plus long-term secret.

    Attributes
    ----------
    imsi:
        15-digit international mobile subscriber identity
        (MCC+MNC+MSIN; private networks conventionally use MCC 999).
    k:
        128-bit subscriber key, hex-encoded (32 hex chars).
    opc:
        Operator-variant key, hex-encoded.
    iccid:
        Physical card serial.
    """

    imsi: str
    k: str
    opc: str
    iccid: str

    def __post_init__(self) -> None:
        if not (self.imsi.isdigit() and len(self.imsi) == 15):
            raise ValueError(f"IMSI must be 15 digits, got {self.imsi!r}")
        for label, key in (("k", self.k), ("opc", self.opc)):
            if len(key) != 32:
                raise ValueError(f"{label} must be 32 hex chars, got {len(key)}")
            int(key, 16)  # raises ValueError on non-hex

    def response(self, rand: bytes) -> bytes:
        """Derive the AKA response RES from the card's secrets and RAND."""
        secret = bytes.fromhex(self.k) + bytes.fromhex(self.opc)
        return hmac.new(secret, rand, hashlib.sha256).digest()


class SimProvisioner:
    """Writes SIM cards and keeps the matching subscriber database.

    The subscriber database half is consumed by
    :class:`repro.radio.core5g.Core5G` for AKA verification (the role of
    Open5GS's UDM/UDR).
    """

    def __init__(self, mcc: str = "999", mnc: str = "70") -> None:
        if not (mcc.isdigit() and len(mcc) == 3):
            raise ValueError(f"MCC must be 3 digits: {mcc!r}")
        if not (mnc.isdigit() and len(mnc) in (2, 3)):
            raise ValueError(f"MNC must be 2-3 digits: {mnc!r}")
        self.mcc = mcc
        self.mnc = mnc
        self._subscribers: dict[str, SimCard] = {}
        self._next_msin = 1

    @property
    def plmn(self) -> str:
        """Public land mobile network code (MCC+MNC)."""
        return self.mcc + self.mnc

    def provision(self, iccid: str | None = None) -> SimCard:
        """Create, record, and return a new SIM card.

        Key material is derived deterministically from the identity so a
        deployment rebuilt from the same PLMN and ordering gets the same
        cards (reproducibility over realism; these are not real secrets).
        """
        msin_width = 15 - len(self.plmn)
        msin = str(self._next_msin).zfill(msin_width)
        if len(msin) > msin_width:
            raise RuntimeError("subscriber space exhausted")
        self._next_msin += 1
        imsi = self.plmn + msin
        k = hashlib.sha256(f"k:{imsi}".encode()).hexdigest()[:32]
        opc = hashlib.sha256(f"opc:{imsi}".encode()).hexdigest()[:32]
        card = SimCard(
            imsi=imsi,
            k=k,
            opc=opc,
            iccid=iccid or f"8988211{imsi[-11:]}",
        )
        self._subscribers[imsi] = card
        return card

    def lookup(self, imsi: str) -> SimCard:
        """Subscriber-database lookup (UDM role)."""
        try:
            return self._subscribers[imsi]
        except KeyError:
            raise AuthenticationError(f"unknown IMSI {imsi}") from None

    def verify(self, imsi: str, rand: bytes, res: bytes) -> None:
        """Check an AKA response against the subscriber database."""
        card = self.lookup(imsi)
        expected = card.response(rand)
        if not hmac.compare_digest(expected, res):
            raise AuthenticationError(f"AKA response mismatch for IMSI {imsi}")

    def __len__(self) -> int:
        return len(self._subscribers)
