"""Standalone 5G core network (Open5GS substitute).

Implements the control- and user-plane state machines the evaluation
exercises: subscriber authentication (AMF+AUSF/UDM roles, backed by the
:class:`~repro.radio.sim_cards.SimProvisioner` subscriber database), PDU
session establishment with slice binding (SMF role), and user-plane byte
accounting per session (UPF role). Mobility and policy are reduced to the
pieces xGFabric touches: a UE registers, opens one session on one slice, and
pushes uplink bytes through it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.radio.sim_cards import AuthenticationError, SimCard, SimProvisioner


class RegistrationError(Exception):
    """UE registration rejected (auth failure, duplicate registration...)."""


class SessionError(Exception):
    """PDU session operation rejected."""


class UeState(Enum):
    DEREGISTERED = "deregistered"
    REGISTERED = "registered"


@dataclass
class PduSession:
    """An established PDU session (the user-plane tunnel through the UPF)."""

    session_id: int
    imsi: str
    slice_name: str
    ue_address: str
    uplink_bytes: int = 0
    downlink_bytes: int = 0
    active: bool = True


@dataclass
class _Registration:
    imsi: str
    state: UeState = UeState.REGISTERED
    sessions: dict[int, PduSession] = field(default_factory=dict)


class Core5G:
    """A standalone 5G core: registration, sessions, user-plane accounting.

    Parameters
    ----------
    provisioner:
        The subscriber database (shared with the SIM provisioning flow).
    slice_names:
        S-NSSAI-like slice identifiers sessions may bind to. The default
        single slice mirrors an unsliced deployment.
    ue_subnet_prefix:
        First three octets of the UE address pool (Open5GS's ``ogstun``
        convention).
    """

    def __init__(
        self,
        provisioner: SimProvisioner,
        slice_names: tuple[str, ...] = ("default",),
        ue_subnet_prefix: str = "10.45.0",
    ) -> None:
        if not slice_names:
            raise ValueError("at least one slice is required")
        self.provisioner = provisioner
        self.slice_names = tuple(slice_names)
        self.ue_subnet_prefix = ue_subnet_prefix
        self._registrations: dict[str, _Registration] = {}
        self._next_session_id = 1
        self._next_host = 2  # .1 is the UPF gateway
        self._auth_counter = 0

    # -- registration (AMF/AUSF) ------------------------------------------------

    def authenticate(self, card: SimCard) -> None:
        """Run the AKA challenge-response against the subscriber database."""
        # Deterministic challenge: unique per attempt, reproducible per run.
        self._auth_counter += 1
        rand = hashlib.sha256(
            f"rand:{card.imsi}:{self._auth_counter}".encode()
        ).digest()[:16]
        res = card.response(rand)
        self.provisioner.verify(card.imsi, rand, res)

    def register(self, card: SimCard) -> str:
        """Register a UE; returns the IMSI on success.

        Re-registration of an already-registered IMSI is idempotent (the
        testbed's UEs re-attach after link drops).
        """
        try:
            self.authenticate(card)
        except AuthenticationError as exc:
            raise RegistrationError(str(exc)) from exc
        reg = self._registrations.get(card.imsi)
        if reg is None:
            self._registrations[card.imsi] = _Registration(imsi=card.imsi)
        else:
            reg.state = UeState.REGISTERED
        return card.imsi

    def deregister(self, imsi: str) -> None:
        """Deregister a UE, tearing down its sessions."""
        reg = self._require_registered(imsi)
        for session in reg.sessions.values():
            session.active = False
        reg.sessions.clear()
        reg.state = UeState.DEREGISTERED

    def is_registered(self, imsi: str) -> bool:
        reg = self._registrations.get(imsi)
        return reg is not None and reg.state is UeState.REGISTERED

    # -- sessions (SMF) ----------------------------------------------------------

    def establish_session(
        self, imsi: str, slice_name: Optional[str] = None
    ) -> PduSession:
        """Establish a PDU session bound to ``slice_name``."""
        reg = self._require_registered(imsi)
        chosen = slice_name or self.slice_names[0]
        if chosen not in self.slice_names:
            raise SessionError(
                f"slice {chosen!r} not configured (have {list(self.slice_names)})"
            )
        session = PduSession(
            session_id=self._next_session_id,
            imsi=imsi,
            slice_name=chosen,
            ue_address=f"{self.ue_subnet_prefix}.{self._next_host}",
        )
        self._next_session_id += 1
        self._next_host += 1
        reg.sessions[session.session_id] = session
        return session

    def release_session(self, imsi: str, session_id: int) -> None:
        reg = self._require_registered(imsi)
        session = reg.sessions.pop(session_id, None)
        if session is None:
            raise SessionError(f"no session {session_id} for IMSI {imsi}")
        session.active = False

    def sessions_for(self, imsi: str) -> list[PduSession]:
        reg = self._registrations.get(imsi)
        return list(reg.sessions.values()) if reg else []

    # -- user plane (UPF) ----------------------------------------------------------

    def route_uplink(self, session: PduSession, n_bytes: int) -> None:
        """Account uplink bytes through the UPF for an active session."""
        if not session.active:
            raise SessionError(f"session {session.session_id} is not active")
        if n_bytes < 0:
            raise ValueError(f"negative byte count: {n_bytes}")
        session.uplink_bytes += n_bytes

    def route_downlink(self, session: PduSession, n_bytes: int) -> None:
        if not session.active:
            raise SessionError(f"session {session.session_id} is not active")
        if n_bytes < 0:
            raise ValueError(f"negative byte count: {n_bytes}")
        session.downlink_bytes += n_bytes

    def total_uplink_bytes(self) -> int:
        """Aggregate uplink bytes across all registrations and sessions."""
        return sum(
            s.uplink_bytes
            for reg in self._registrations.values()
            for s in reg.sessions.values()
        )

    # -- helpers --------------------------------------------------------------------

    def _require_registered(self, imsi: str) -> _Registration:
        reg = self._registrations.get(imsi)
        if reg is None or reg.state is not UeState.REGISTERED:
            raise RegistrationError(f"IMSI {imsi} is not registered")
        return reg
