"""The gNodeB (or eNodeB for the 4G cell): RAN operations.

Combines the carrier configuration, the SDR front end, the MAC scheduler and
the slicing configuration, and computes realized per-UE uplink throughput
samples. This is the piece of the pipeline that replaces srsRAN.

Per one-second sample, for each UE:

    grant      = scheduler share of the (slice's) PRB grid
    phy_rate   = grant x rate-per-PRB(CQI draw) x SDR derate x multi-UE eff.
    realized   = min(phy_rate x modem eff x host eff, hard caps)
    sample     = realized x lognormal fading (variance grows near the SDR
                 sampling ceiling)

Invariants (property-tested): PRB grants never exceed the grid; slice
partitions conserve PRBs; samples are non-negative and respect hard caps
up to fading noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.radio.phy import CarrierConfig
from repro.radio.scheduler import MacScheduler, RoundRobinScheduler, UeDemand
from repro.radio.sdr import SdrFrontEnd, USRP_B210
from repro.radio.slicing import SliceConfig
from repro.radio.ue import UserEquipment

#: Fractional aggregate-capacity loss per additional concurrently scheduled
#: UE (control channel + grant overhead). Calibrated against the paper's
#: two-user aggregates landing slightly below the single-user figures.
MULTI_UE_OVERHEAD = 0.06


@dataclass
class GNodeB:
    """A base station serving one carrier.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"gnb-prod"``.
    carrier:
        The configured carrier (technology, bandwidth, duplexing).
    sdr:
        SDR front end; bandwidth support is validated at attach time.
    scheduler:
        MAC scheduling discipline (default round-robin, srsRAN-like).
    slice_config:
        Optional PRB partitioning. UEs bind to slices via their
        ``slice_name``; UEs without one share the ``"default"`` slice,
        which must then exist.
    """

    name: str
    carrier: CarrierConfig
    sdr: SdrFrontEnd = USRP_B210
    scheduler: MacScheduler = field(default_factory=RoundRobinScheduler)
    slice_config: Optional[SliceConfig] = None
    metrics: Optional[MetricsRegistry] = None
    _ues: dict[str, UserEquipment] = field(default_factory=dict)
    _slice_schedulers: dict[str, MacScheduler] = field(default_factory=dict)

    def bind_metrics(self, registry: MetricsRegistry) -> "GNodeB":
        """Record per-round scheduler metrics for this cell (and its slices)."""
        self.metrics = registry
        self.scheduler.bind_metrics(registry, cell=self.name)
        for slice_name, sched in self._slice_schedulers.items():
            sched.bind_metrics(registry, cell=f"{self.name}/{slice_name}")
        return self

    def __post_init__(self) -> None:
        if not self.sdr.supports(self.carrier.bandwidth_mhz):
            raise ValueError(
                f"{self.sdr.name} cannot serve a {self.carrier.bandwidth_mhz} MHz carrier"
            )

    # -- attachment ----------------------------------------------------------

    def attach(self, ue: UserEquipment) -> None:
        """Attach a UE to this cell (radio-level admission)."""
        if not ue.supports(self.carrier.technology, self.carrier.duplex):
            raise ValueError(
                f"UE {ue.ue_id}: modem {ue.modem.name} does not support "
                f"{self.carrier.technology}/{self.carrier.duplex.value}"
            )
        if ue.ue_id in self._ues:
            raise ValueError(f"UE {ue.ue_id} already attached to {self.name}")
        if self.slice_config is not None:
            slice_name = ue.slice_name or "default"
            self.slice_config.get(slice_name)  # raises KeyError if absent
        self._ues[ue.ue_id] = ue

    def detach(self, ue_id: str) -> None:
        if ue_id not in self._ues:
            raise KeyError(f"UE {ue_id} not attached to {self.name}")
        del self._ues[ue_id]

    @property
    def attached_ues(self) -> list[UserEquipment]:
        return list(self._ues.values())

    # -- throughput sampling ---------------------------------------------------

    def uplink_samples(
        self,
        rng: np.random.Generator,
        n_samples: int,
        active_ue_ids: Optional[list[str]] = None,
    ) -> dict[str, np.ndarray]:
        """Generate per-second uplink throughput samples (bits/s) per UE.

        ``active_ue_ids`` restricts which attached UEs saturate the uplink
        (default: all attached UEs). Returns ``{ue_id: array[n_samples]}``.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive: {n_samples}")
        active = (
            [self._ues[u] for u in active_ue_ids]
            if active_ue_ids is not None
            else self.attached_ues
        )
        if not active:
            raise ValueError("no active UEs to sample")

        tech = self.carrier.technology
        duplex = self.carrier.duplex
        n_active = len(active)
        derate = self.sdr.derate(self.carrier.bandwidth_mhz, active_ues=n_active)
        jitter = self.sdr.jitter_scale(self.carrier.bandwidth_mhz, active_ues=n_active)
        multi_ue_eff = max(0.4, 1.0 - MULTI_UE_OVERHEAD * (n_active - 1))

        out = {ue.ue_id: np.empty(n_samples) for ue in active}
        for i in range(n_samples):
            grants = self._grants_for_round(active, rng)
            for ue in active:
                prbs = grants.get(ue.ue_id, 0)
                cqi = int(ue.channel.draw_cqi(rng, 1)[0])
                phy = (
                    prbs
                    * self.carrier.uplink_rate_per_prb(cqi)
                    * derate
                    * multi_ue_eff
                    * ue.channel.gain
                )
                realized = min(
                    phy * ue.combined_efficiency(tech, duplex),
                    ue.uplink_cap_bps(tech, duplex),
                )
                fade = float(ue.channel.draw_fading(rng, 1, jitter_scale=jitter)[0])
                out[ue.ue_id][i] = max(realized * fade, 0.0)
        return out

    def downlink_samples(
        self,
        rng: np.random.Generator,
        n_samples: int,
        active_ue_ids: Optional[list[str]] = None,
    ) -> dict[str, np.ndarray]:
        """Per-second downlink throughput samples (bits/s) per UE.

        The paper's evaluation is uplink-only (sensor traffic), but the
        return path -- CFD results and robot tasking back to the site --
        rides the downlink. Structure mirrors :meth:`uplink_samples` with
        the duplex roles swapped: FDD has a dedicated downlink carrier;
        TDD's downlink gets the slot fraction the uplink doesn't.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive: {n_samples}")
        active = (
            [self._ues[u] for u in active_ue_ids]
            if active_ue_ids is not None
            else self.attached_ues
        )
        if not active:
            raise ValueError("no active UEs to sample")
        tech, duplex = self.carrier.technology, self.carrier.duplex
        n_active = len(active)
        derate = self.sdr.derate(self.carrier.bandwidth_mhz, active_ues=n_active)
        jitter = self.sdr.jitter_scale(self.carrier.bandwidth_mhz, active_ues=n_active)
        multi_ue_eff = max(0.4, 1.0 - MULTI_UE_OVERHEAD * (n_active - 1))
        # Downlink fraction: FDD -> dedicated carrier; TDD -> the D slots
        # plus the special slots' downlink share.
        if self.carrier.uplink_fraction >= 1.0:
            dl_over_ul = 1.0
        else:
            dl_fraction = self.carrier.tdd_pattern.downlink_fraction
            dl_over_ul = dl_fraction / max(self.carrier.uplink_fraction, 1e-9)
        out = {ue.ue_id: np.empty(n_samples) for ue in active}
        for i in range(n_samples):
            grants = self._grants_for_round(active, rng)
            for ue in active:
                prbs = grants.get(ue.ue_id, 0)
                cqi = int(ue.channel.draw_cqi(rng, 1)[0])
                phy = (
                    prbs
                    * self.carrier.uplink_rate_per_prb(cqi) * dl_over_ul
                    * derate * multi_ue_eff * ue.channel.gain
                )
                # Downlink is gNB-transmitted: the UE-side uplink caps
                # (modem TX power, host USB) do not apply; reception
                # efficiency reuses the device/modem factors.
                realized = phy * ue.combined_efficiency(tech, duplex)
                fade = float(ue.channel.draw_fading(rng, 1, jitter_scale=jitter)[0])
                out[ue.ue_id][i] = max(realized * fade, 0.0)
        return out

    def _grants_for_round(
        self, active: list[UserEquipment], rng: np.random.Generator
    ) -> dict[str, int]:
        """One scheduling round: slice partition, then per-slice scheduling."""
        total_prbs = self.carrier.n_prbs
        if self.slice_config is None:
            demands = [
                UeDemand(ue.ue_id, prbs_wanted=total_prbs, cqi=int(ue.channel.mean_cqi))
                for ue in active
            ]
            return self.scheduler.allocate(demands, total_prbs)

        partition = self.slice_config.partition_prbs(total_prbs)
        grants: dict[str, int] = {}
        by_slice: dict[str, list[UserEquipment]] = {}
        for ue in active:
            by_slice.setdefault(ue.slice_name or "default", []).append(ue)
        for slice_name, ues in by_slice.items():
            budget = partition[slice_name]
            sched = self._slice_schedulers.get(slice_name)
            if sched is None:
                sched = RoundRobinScheduler()
                if self.metrics is not None:
                    sched.bind_metrics(
                        self.metrics, cell=f"{self.name}/{slice_name}"
                    )
                self._slice_schedulers[slice_name] = sched
            demands = [
                UeDemand(ue.ue_id, prbs_wanted=budget, cqi=int(ue.channel.mean_cqi))
                for ue in ues
            ]
            grants.update(sched.allocate(demands, budget))
        return grants
