"""The gNodeB (or eNodeB for the 4G cell): RAN operations.

Combines the carrier configuration, the SDR front end, the MAC scheduler and
the slicing configuration, and computes realized per-UE uplink throughput
samples. This is the piece of the pipeline that replaces srsRAN.

Per one-second sample, for each UE:

    grant      = scheduler share of the (slice's) PRB grid
    phy_rate   = grant x rate-per-PRB(CQI draw) x SDR derate x multi-UE eff.
    realized   = min(phy_rate x modem eff x host eff, hard caps)
    sample     = realized x lognormal fading (variance grows near the SDR
                 sampling ceiling)

The public sampling methods run array-at-a-time: the scheduler produces a
``(n_samples, n_ues)`` PRB-grant matrix, the per-UE state is packed into
contiguous arrays (:class:`repro.radio.state.UeStateArrays`), and one
``standard_normal`` tensor drives the CQI and fading draws for the whole
run. The retired per-UE loops survive as ``*_samples_scalar`` reference
implementations; the parity battery asserts the two paths are bit-identical
sample-for-sample at every N.

Invariants (property-tested): PRB grants never exceed the grid; slice
partitions conserve PRBs; samples are non-negative and respect hard caps
up to fading noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.radio.phy import CarrierConfig
from repro.radio.scheduler import MacScheduler, RoundRobinScheduler, UeDemand
from repro.radio.sdr import SdrFrontEnd, USRP_B210
from repro.radio.slicing import SliceConfig
from repro.radio.state import (
    UeStateArrays,
    rate_per_prb_table,
    sample_throughput_matrix,
)
from repro.radio.ue import UserEquipment

#: Fractional aggregate-capacity loss per additional concurrently scheduled
#: UE (control channel + grant overhead). Calibrated against the paper's
#: two-user aggregates landing slightly below the single-user figures.
MULTI_UE_OVERHEAD = 0.06


@dataclass
class GNodeB:
    """A base station serving one carrier.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"gnb-prod"``.
    carrier:
        The configured carrier (technology, bandwidth, duplexing).
    sdr:
        SDR front end; bandwidth support is validated at attach time.
    scheduler:
        MAC scheduling discipline (default round-robin, srsRAN-like).
    slice_config:
        Optional PRB partitioning. UEs bind to slices via their
        ``slice_name``; UEs without one share the ``"default"`` slice,
        which must then exist.
    """

    name: str
    carrier: CarrierConfig
    sdr: SdrFrontEnd = USRP_B210
    scheduler: MacScheduler = field(default_factory=RoundRobinScheduler)
    slice_config: Optional[SliceConfig] = None
    metrics: Optional[MetricsRegistry] = None
    _ues: dict[str, UserEquipment] = field(default_factory=dict)
    _slice_schedulers: dict[str, MacScheduler] = field(default_factory=dict)
    _rate_table: Optional[np.ndarray] = field(default=None, repr=False)

    def bind_metrics(self, registry: MetricsRegistry) -> "GNodeB":
        """Record per-round scheduler metrics for this cell (and its slices)."""
        self.metrics = registry
        self.scheduler.bind_metrics(registry, cell=self.name)
        for slice_name, sched in self._slice_schedulers.items():
            sched.bind_metrics(registry, cell=f"{self.name}/{slice_name}")
        return self

    def __post_init__(self) -> None:
        if not self.sdr.supports(self.carrier.bandwidth_mhz):
            raise ValueError(
                f"{self.sdr.name} cannot serve a {self.carrier.bandwidth_mhz} MHz carrier"
            )

    # -- attachment ----------------------------------------------------------

    def attach(self, ue: UserEquipment) -> None:
        """Attach a UE to this cell (radio-level admission)."""
        if not ue.supports(self.carrier.technology, self.carrier.duplex):
            raise ValueError(
                f"UE {ue.ue_id}: modem {ue.modem.name} does not support "
                f"{self.carrier.technology}/{self.carrier.duplex.value}"
            )
        if ue.ue_id in self._ues:
            raise ValueError(f"UE {ue.ue_id} already attached to {self.name}")
        if self.slice_config is not None:
            slice_name = ue.slice_name or "default"
            self.slice_config.get(slice_name)  # raises KeyError if absent
        self._ues[ue.ue_id] = ue

    def detach(self, ue_id: str) -> None:
        if ue_id not in self._ues:
            raise KeyError(f"UE {ue_id} not attached to {self.name}")
        del self._ues[ue_id]

    @property
    def attached_ues(self) -> list[UserEquipment]:
        return list(self._ues.values())

    # -- throughput sampling ---------------------------------------------------

    def _active(
        self, active_ue_ids: Optional[list[str]], n_samples: int
    ) -> list[UserEquipment]:
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive: {n_samples}")
        active = (
            [self._ues[u] for u in active_ue_ids]
            if active_ue_ids is not None
            else self.attached_ues
        )
        if not active:
            raise ValueError("no active UEs to sample")
        return active

    def _dl_over_ul(self) -> float:
        """Downlink/uplink slot ratio: FDD -> dedicated downlink carrier;
        TDD's downlink gets the slot fraction the uplink doesn't."""
        if self.carrier.uplink_fraction >= 1.0:
            return 1.0
        dl_fraction = self.carrier.tdd_pattern.downlink_fraction
        return dl_fraction / max(self.carrier.uplink_fraction, 1e-9)

    def rate_table(self) -> np.ndarray:
        """Cached CQI -> uplink bits/s-per-PRB table for this carrier."""
        if self._rate_table is None:
            self._rate_table = rate_per_prb_table(self.carrier)
        return self._rate_table

    def _samples_matrix(
        self,
        rng: np.random.Generator,
        n_samples: int,
        active: list[UserEquipment],
        downlink: bool,
    ) -> tuple[UeStateArrays, np.ndarray]:
        """The vectorized hot path shared by both directions.

        One scheduler call produces the full ``(S, U)`` grant matrix, one
        ``standard_normal`` tensor reproduces the scalar loop's draw order,
        and one kernel call produces every sample. Returns the packed state
        (for column order) and a C-contiguous ``(U, S)`` sample matrix.
        """
        tech, duplex = self.carrier.technology, self.carrier.duplex
        n_active = len(active)
        derate = self.sdr.derate(self.carrier.bandwidth_mhz, active_ues=n_active)
        jitter = self.sdr.jitter_scale(self.carrier.bandwidth_mhz, active_ues=n_active)
        multi_ue_eff = max(0.4, 1.0 - MULTI_UE_OVERHEAD * (n_active - 1))
        grants = self._grants_matrix(active, n_samples)
        state = UeStateArrays.from_ues(active, tech, duplex)
        z = rng.standard_normal((n_samples, n_active, 2))
        samples = sample_throughput_matrix(
            state,
            grants,
            z,
            self.rate_table(),
            derate=derate,
            multi_ue_eff=multi_ue_eff,
            jitter_scale=jitter,
            rate_scale=self._dl_over_ul() if downlink else None,
            apply_caps=not downlink,
        )
        # One bulk transpose+copy: per-UE rows come out contiguous without
        # a per-UE allocation loop.
        return state, np.ascontiguousarray(samples.T)

    def uplink_samples(
        self,
        rng: np.random.Generator,
        n_samples: int,
        active_ue_ids: Optional[list[str]] = None,
    ) -> dict[str, np.ndarray]:
        """Generate per-second uplink throughput samples (bits/s) per UE.

        ``active_ue_ids`` restricts which attached UEs saturate the uplink
        (default: all attached UEs). Returns ``{ue_id: array[n_samples]}``.
        Vectorized; bit-identical to :meth:`uplink_samples_scalar`.
        """
        active = self._active(active_ue_ids, n_samples)
        state, samples = self._samples_matrix(rng, n_samples, active, downlink=False)
        return {ue_id: samples[j] for j, ue_id in enumerate(state.ue_ids)}

    def downlink_samples(
        self,
        rng: np.random.Generator,
        n_samples: int,
        active_ue_ids: Optional[list[str]] = None,
    ) -> dict[str, np.ndarray]:
        """Per-second downlink throughput samples (bits/s) per UE.

        The paper's evaluation is uplink-only (sensor traffic), but the
        return path -- CFD results and robot tasking back to the site --
        rides the downlink. Downlink is gNB-transmitted: the UE-side
        uplink caps (modem TX power, host USB) do not apply; reception
        efficiency reuses the device/modem factors. Vectorized;
        bit-identical to :meth:`downlink_samples_scalar`.
        """
        active = self._active(active_ue_ids, n_samples)
        state, samples = self._samples_matrix(rng, n_samples, active, downlink=True)
        return {ue_id: samples[j] for j, ue_id in enumerate(state.ue_ids)}

    # -- scalar reference implementations ---------------------------------------

    def uplink_samples_scalar(
        self,
        rng: np.random.Generator,
        n_samples: int,
        active_ue_ids: Optional[list[str]] = None,
    ) -> dict[str, np.ndarray]:
        """Retired per-UE uplink loop, kept as the parity-battery reference.

        Consumes the RNG stream identically to :meth:`uplink_samples`; the
        outputs must match bit-for-bit at any N.
        """
        active = self._active(active_ue_ids, n_samples)
        tech = self.carrier.technology
        duplex = self.carrier.duplex
        n_active = len(active)
        derate = self.sdr.derate(self.carrier.bandwidth_mhz, active_ues=n_active)
        jitter = self.sdr.jitter_scale(self.carrier.bandwidth_mhz, active_ues=n_active)
        multi_ue_eff = max(0.4, 1.0 - MULTI_UE_OVERHEAD * (n_active - 1))

        out = {ue.ue_id: np.empty(n_samples) for ue in active}
        for i in range(n_samples):
            grants = self._grants_for_round(active, rng)
            for ue in active:
                prbs = grants.get(ue.ue_id, 0)
                cqi = int(ue.channel.draw_cqi(rng, 1)[0])
                phy = (
                    prbs
                    * self.carrier.uplink_rate_per_prb(cqi)
                    * derate
                    * multi_ue_eff
                    * ue.channel.gain
                )
                realized = min(
                    phy * ue.combined_efficiency(tech, duplex),
                    ue.uplink_cap_bps(tech, duplex),
                )
                fade = float(ue.channel.draw_fading(rng, 1, jitter_scale=jitter)[0])
                out[ue.ue_id][i] = max(realized * fade, 0.0)
        return out

    def downlink_samples_scalar(
        self,
        rng: np.random.Generator,
        n_samples: int,
        active_ue_ids: Optional[list[str]] = None,
    ) -> dict[str, np.ndarray]:
        """Retired per-UE downlink loop; structure mirrors
        :meth:`uplink_samples_scalar` with the duplex roles swapped. Kept
        as the parity-battery reference for :meth:`downlink_samples`.
        """
        active = self._active(active_ue_ids, n_samples)
        tech, duplex = self.carrier.technology, self.carrier.duplex
        n_active = len(active)
        derate = self.sdr.derate(self.carrier.bandwidth_mhz, active_ues=n_active)
        jitter = self.sdr.jitter_scale(self.carrier.bandwidth_mhz, active_ues=n_active)
        multi_ue_eff = max(0.4, 1.0 - MULTI_UE_OVERHEAD * (n_active - 1))
        dl_over_ul = self._dl_over_ul()
        out = {ue.ue_id: np.empty(n_samples) for ue in active}
        for i in range(n_samples):
            grants = self._grants_for_round(active, rng)
            for ue in active:
                prbs = grants.get(ue.ue_id, 0)
                cqi = int(ue.channel.draw_cqi(rng, 1)[0])
                phy = (
                    prbs
                    * self.carrier.uplink_rate_per_prb(cqi) * dl_over_ul
                    * derate * multi_ue_eff * ue.channel.gain
                )
                # Downlink is gNB-transmitted: the UE-side uplink caps
                # (modem TX power, host USB) do not apply; reception
                # efficiency reuses the device/modem factors.
                realized = phy * ue.combined_efficiency(tech, duplex)
                fade = float(ue.channel.draw_fading(rng, 1, jitter_scale=jitter)[0])
                out[ue.ue_id][i] = max(realized * fade, 0.0)
        return out

    def _grants_for_round(
        self, active: list[UserEquipment], rng: np.random.Generator
    ) -> dict[str, int]:
        """One scheduling round: slice partition, then per-slice scheduling."""
        total_prbs = self.carrier.n_prbs
        if self.slice_config is None:
            demands = [
                UeDemand(ue.ue_id, prbs_wanted=total_prbs, cqi=int(ue.channel.mean_cqi))
                for ue in active
            ]
            return self.scheduler.allocate(demands, total_prbs)

        partition = self.slice_config.partition_prbs(total_prbs)
        grants: dict[str, int] = {}
        by_slice: dict[str, list[UserEquipment]] = {}
        for ue in active:
            by_slice.setdefault(ue.slice_name or "default", []).append(ue)
        for slice_name, ues in by_slice.items():
            budget = partition[slice_name]
            sched = self._slice_schedulers.get(slice_name)
            if sched is None:
                sched = RoundRobinScheduler()
                if self.metrics is not None:
                    sched.bind_metrics(
                        self.metrics, cell=f"{self.name}/{slice_name}"
                    )
                self._slice_schedulers[slice_name] = sched
            demands = [
                UeDemand(ue.ue_id, prbs_wanted=budget, cqi=int(ue.channel.mean_cqi))
                for ue in ues
            ]
            grants.update(sched.allocate(demands, budget))
        return grants

    def _grants_matrix(
        self, active: list[UserEquipment], n_rounds: int
    ) -> np.ndarray:
        """All scheduling rounds at once: ``(n_rounds, len(active))`` PRBs.

        Mirrors :meth:`_grants_for_round` exactly -- same demands, same
        per-slice scheduler instances and state evolution -- but drives
        each scheduler's :meth:`~repro.radio.scheduler.MacScheduler.
        allocate_rounds` once instead of once per round. Slices are
        column-blocks; their schedulers hold independent state, so
        slice-major order here equals the scalar path's round-major order.
        """
        total_prbs = self.carrier.n_prbs
        if self.slice_config is None:
            demands = [
                UeDemand(ue.ue_id, prbs_wanted=total_prbs, cqi=int(ue.channel.mean_cqi))
                for ue in active
            ]
            return self.scheduler.allocate_rounds(demands, total_prbs, n_rounds)

        partition = self.slice_config.partition_prbs(total_prbs)
        grants = np.zeros((n_rounds, len(active)), dtype=np.int64)
        by_slice: dict[str, list[int]] = {}
        for j, ue in enumerate(active):
            by_slice.setdefault(ue.slice_name or "default", []).append(j)
        for slice_name, cols in by_slice.items():
            budget = partition[slice_name]
            sched = self._slice_schedulers.get(slice_name)
            if sched is None:
                sched = RoundRobinScheduler()
                if self.metrics is not None:
                    sched.bind_metrics(
                        self.metrics, cell=f"{self.name}/{slice_name}"
                    )
                self._slice_schedulers[slice_name] = sched
            demands = [
                UeDemand(
                    active[j].ue_id,
                    prbs_wanted=budget,
                    cqi=int(active[j].channel.mean_cqi),
                )
                for j in cols
            ]
            grants[:, cols] = sched.allocate_rounds(demands, budget, n_rounds)
        return grants
