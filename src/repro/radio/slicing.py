"""5G network slicing: PRB partitioning across virtual networks.

The paper's Figure 6 experiment configures nine slice profiles on the 40 MHz
5G TDD cell, each a fixed share of the physical resource blocks (10 %..90 %),
and shows uplink throughput scaling in proportion to the assigned share. A
:class:`SliceConfig` here is exactly that: a named partition of the PRB grid.
Scheduling then happens *within* each slice independently.

The dynamic policy (:meth:`SlicePolicy.rebalance`) implements the paper's
future-work direction of "IoT-tailored slicing techniques as a way of
optimizing remote network usage" -- shares adapt to offered load subject to
a guaranteed floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

_EPS = 1e-9


@dataclass(frozen=True)
class NetworkSlice:
    """One slice: a name and a fractional share of the PRB grid."""

    name: str
    prb_share: float

    def __post_init__(self) -> None:
        if not 0.0 < self.prb_share <= 1.0:
            raise ValueError(
                f"slice {self.name!r}: prb_share must be in (0,1], got {self.prb_share}"
            )


class SliceConfig:
    """A complete slicing configuration over a carrier's PRB grid.

    Shares must sum to at most 1 (the complementary 10/90..90/10 profiles of
    Fig. 6 always sum to exactly 1). PRB partitioning uses largest-remainder
    rounding so every PRB is assigned when shares sum to 1.
    """

    def __init__(self, slices: list[NetworkSlice]) -> None:
        if not slices:
            raise ValueError("a slice configuration needs at least one slice")
        names = [s.name for s in slices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate slice names: {names}")
        total = sum(s.prb_share for s in slices)
        if total > 1.0 + _EPS:
            raise ValueError(f"slice shares sum to {total:.4f} > 1")
        self.slices = list(slices)

    def __iter__(self) -> Iterator[NetworkSlice]:
        return iter(self.slices)

    def __len__(self) -> int:
        return len(self.slices)

    def get(self, name: str) -> NetworkSlice:
        for s in self.slices:
            if s.name == name:
                return s
        raise KeyError(f"no slice named {name!r}")

    def partition_prbs(self, total_prbs: int) -> dict[str, int]:
        """Split ``total_prbs`` among slices by largest-remainder rounding.

        Invariant (property-tested): the partition sums to
        ``round(total_prbs * sum(shares))`` and each slice gets within one
        PRB of its exact share.
        """
        if total_prbs < 0:
            raise ValueError(f"negative PRB count: {total_prbs}")
        exact = {s.name: s.prb_share * total_prbs for s in self.slices}
        floors = {name: int(v) for name, v in exact.items()}
        target = round(sum(exact.values()))
        leftover = target - sum(floors.values())
        by_remainder = sorted(
            exact, key=lambda name: (exact[name] - floors[name]), reverse=True
        )
        for name in by_remainder[:leftover]:
            floors[name] += 1
        return floors

    @classmethod
    def complementary_pair(
        cls, share_a: float, name_a: str = "slice-a", name_b: str = "slice-b"
    ) -> "SliceConfig":
        """The Fig. 6 construction: two slices with shares summing to 1."""
        if not 0.0 < share_a < 1.0:
            raise ValueError(f"share_a must be in (0,1), got {share_a}")
        return cls(
            [
                NetworkSlice(name_a, share_a),
                NetworkSlice(name_b, 1.0 - share_a),
            ]
        )

    @classmethod
    def nine_profiles(cls) -> list["SliceConfig"]:
        """The paper's nine complementary profiles: 10/90, 20/80, ... 90/10."""
        return [cls.complementary_pair(i / 10.0) for i in range(1, 10)]


@dataclass
class SlicePolicy:
    """Dynamic slice rebalancing (paper section 5 future work).

    Adjusts shares toward each slice's offered-load fraction while
    guaranteeing every slice at least ``min_share``.
    """

    min_share: float = 0.05
    adaptation_rate: float = 0.5
    _shares: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_share < 1.0:
            raise ValueError(f"min_share out of [0,1): {self.min_share}")
        if not 0.0 < self.adaptation_rate <= 1.0:
            raise ValueError(f"adaptation_rate out of (0,1]: {self.adaptation_rate}")

    def rebalance(
        self, config: SliceConfig, offered_load_bps: dict[str, float]
    ) -> SliceConfig:
        """Return a new config with shares nudged toward demand fractions."""
        names = [s.name for s in config]
        missing = set(offered_load_bps) - set(names)
        if missing:
            raise KeyError(f"offered load for unknown slices: {sorted(missing)}")
        original_total = sum(s.prb_share for s in config)
        floor_total = self.min_share * len(names)
        if floor_total > original_total + _EPS:
            raise ValueError(
                f"min_share {self.min_share} infeasible: {len(names)} slices "
                f"need {floor_total:.3f} but only {original_total:.3f} is allocated"
            )
        total_load = sum(max(offered_load_bps.get(n, 0.0), 0.0) for n in names)
        nudged: dict[str, float] = {}
        for s in config:
            if total_load <= 0:
                demand_frac = 1.0 / len(names)
            else:
                demand_frac = max(offered_load_bps.get(s.name, 0.0), 0.0) / total_load
            nudged[s.name] = (
                (1 - self.adaptation_rate) * s.prb_share
                + self.adaptation_rate * demand_frac * original_total
            )
        # Guarantee floors exactly: distribute the share budget above the
        # floors proportionally to each slice's above-floor demand.
        free_budget = original_total - floor_total
        free = {n: max(v - self.min_share, 0.0) for n, v in nudged.items()}
        free_total = sum(free.values())
        result = []
        for n in names:
            extra = (
                free_budget * free[n] / free_total
                if free_total > 0
                else free_budget / len(names)
            )
            result.append(NetworkSlice(n, self.min_share + extra))
        return SliceConfig(result)
