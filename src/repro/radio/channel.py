"""Stochastic radio channel model.

Each UE sees a channel whose quality (CQI) fluctuates around a
technology-dependent operating point, plus fast lognormal fading on realized
throughput. The paper's reported sample standard deviations (3-5 Mbps on the
slicing runs, growing with bandwidth in TDD) calibrate the noise scales.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class ChannelModel:
    """Per-UE channel statistics.

    Attributes
    ----------
    mean_cqi:
        Operating channel-quality index (1..15). The LTE uplink in the
        testbed runs around CQI 8 (16QAM-class), the NR uplink around
        CQI 10 (64QAM-class with margin).
    cqi_sigma:
        Standard deviation of the per-sample CQI draw (truncated to 1..15).
    fading_sigma:
        Sigma of the multiplicative lognormal fast-fading term.
    gain:
        Static per-UE link gain (antenna placement, cable quality); 1.0 is
        nominal. Fig. 6's two Raspberry Pis show a persistent ~5 % asymmetry
        modeled this way.
    """

    mean_cqi: float = 10.0
    cqi_sigma: float = 0.7
    fading_sigma: float = 0.06
    gain: float = 1.0

    def __post_init__(self) -> None:
        if not 1.0 <= self.mean_cqi <= 15.0:
            raise ValueError(f"mean_cqi out of [1,15]: {self.mean_cqi}")
        if self.cqi_sigma < 0 or self.fading_sigma < 0:
            raise ValueError("sigmas must be non-negative")
        if self.gain <= 0:
            raise ValueError(f"gain must be positive: {self.gain}")

    def draw_cqi(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` per-sample CQI values, clipped to the valid ladder."""
        draws = rng.normal(self.mean_cqi, self.cqi_sigma, size=n)
        return np.clip(np.rint(draws), 1, 15).astype(int)

    def degraded(
        self, cqi_drop: float = 4.0, fading_scale: float = 2.0
    ) -> "ChannelModel":
        """A faded copy of this channel: CQI pulled down (floored at the
        bottom of the ladder) and fast fading widened -- the shape of a
        rural link fade rather than a hard outage."""
        if cqi_drop < 0:
            raise ValueError(f"cqi_drop must be non-negative: {cqi_drop}")
        if fading_scale < 1.0:
            raise ValueError(f"fading_scale must be >= 1: {fading_scale}")
        return replace(
            self,
            mean_cqi=max(1.0, self.mean_cqi - cqi_drop),
            fading_sigma=self.fading_sigma * fading_scale,
        )

    def draw_fading(
        self, rng: np.random.Generator, n: int = 1, jitter_scale: float = 1.0
    ) -> np.ndarray:
        """Multiplicative lognormal fading factors (mean ~ 1)."""
        if jitter_scale < 1.0:
            raise ValueError(f"jitter_scale must be >= 1: {jitter_scale}")
        sigma = self.fading_sigma * jitter_scale
        # Mean-one lognormal: exp(N(-sigma^2/2, sigma)), built from explicit
        # standard normals + numpy's exp rather than `rng.lognormal` so the
        # scalar path and the vectorized state-array kernel share one exp
        # implementation (libm's exp inside the generator's C code and
        # numpy's SIMD exp can disagree by 1 ulp). Consumes the RNG stream
        # identically: one standard normal per draw.
        z = rng.standard_normal(n)
        return np.exp(-0.5 * sigma * sigma + sigma * z)


#: Operating points per technology, used by the deployment builders.
LTE_CHANNEL = ChannelModel(mean_cqi=8.0, cqi_sigma=0.6, fading_sigma=0.07)
NR_CHANNEL = ChannelModel(mean_cqi=10.0, cqi_sigma=0.7, fading_sigma=0.06)
