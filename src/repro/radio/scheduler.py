"""MAC-layer PRB scheduling.

Each scheduling round (one slot batch) the scheduler divides a PRB budget
among UEs with pending uplink demand. Two disciplines are provided:

* :class:`RoundRobinScheduler` -- equal shares, rotating the remainder, which
  is how srsRAN's default uplink scheduler behaves for saturating flows and
  what produces the "fair sharing" / "balanced performance" the paper reports
  for the two-user 5G experiments.
* :class:`ProportionalFairScheduler` -- weights shares by instantaneous
  channel quality over average realized rate; included because the 4G
  two-laptop runs show "uneven user allocation" (a PF-like capture effect).

Invariant (property-tested): allocations never exceed the budget and sum to
``min(budget, total demand in PRBs)`` -- PRBs are conserved.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.metrics import RATIO_BUCKETS, MetricsRegistry


@dataclass(frozen=True)
class UeDemand:
    """One UE's demand in a scheduling round.

    Attributes
    ----------
    ue_id:
        Stable identifier used for rotation/fairness state.
    prbs_wanted:
        PRBs the UE could use this round (``None``/large = saturating).
    cqi:
        Instantaneous channel quality (used by proportional-fair).
    """

    ue_id: str
    prbs_wanted: int
    cqi: int = 10

    def __post_init__(self) -> None:
        if self.prbs_wanted < 0:
            raise ValueError(f"negative PRB demand: {self.prbs_wanted}")


def round_robin_rounds(
    n_ues: int,
    budget: int,
    n_rounds: int,
    start_rotation: int,
    sorted_pos: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Closed-form :class:`RoundRobinScheduler` grants for uniform
    saturating demands, one row per round.

    The water-fill collapses when every UE wants at least the whole budget:
    each round grants ``budget // n`` PRBs to everyone plus one extra PRB to
    the ``budget % n`` UEs at rotating positions in *sorted ue_id* order
    (the scalar scheduler's remainder rotation). ``sorted_pos[j]`` is column
    ``j``'s rank in that sorted order. Returns the ``(n_rounds, n_ues)``
    int64 grants matrix and the rotation counter after ``n_rounds`` rounds.
    Bit-identical to looping ``allocate`` (property-tested).
    """
    if n_ues <= 0:
        raise ValueError(f"n_ues must be positive: {n_ues}")
    base, extra = divmod(budget, n_ues)
    grants = np.full((n_rounds, n_ues), base, dtype=np.int64)
    if extra == 0:
        # Budget divides evenly: the scalar loop never reaches the
        # remainder-rotation branch, so the rotation counter is untouched.
        return grants, start_rotation
    starts = (start_rotation + np.arange(n_rounds, dtype=np.int64)) % n_ues
    offsets = (sorted_pos[None, :] - starts[:, None]) % n_ues
    grants += offsets < extra
    return grants, start_rotation + n_rounds


class MacScheduler(ABC):
    """Allocates a PRB budget among demanding UEs each round."""

    #: Unbound by default; the scheduling loop stays observation-free until
    #: :meth:`bind_metrics` is called (one ``is None`` branch per round).
    _metrics: Optional[MetricsRegistry] = None
    _cell: str = ""
    _round: int = 0

    @abstractmethod
    def allocate(self, demands: list[UeDemand], budget: int) -> dict[str, int]:
        """Return ``{ue_id: prbs}``; total never exceeds ``budget``."""

    def allocate_rounds(
        self, demands: list[UeDemand], budget: int, n_rounds: int
    ) -> np.ndarray:
        """Grants for ``n_rounds`` consecutive rounds as an int64 matrix.

        Row ``r`` is round ``r``; column ``j`` is ``demands[j]``. The
        default implementation loops :meth:`allocate`, so it is
        bit-identical to per-round scheduling by construction (including
        scheduler state evolution and metric observations). Disciplines
        with closed-form round structure override this with an
        array-at-a-time fast path.
        """
        if n_rounds < 0:
            raise ValueError(f"negative round count: {n_rounds}")
        out = np.zeros((n_rounds, len(demands)), dtype=np.int64)
        for r in range(n_rounds):
            alloc = self.allocate(demands, budget)
            for j, d in enumerate(demands):
                out[r, j] = alloc.get(d.ue_id, 0)
        return out

    def bind_metrics(
        self, registry: MetricsRegistry, cell: str = ""
    ) -> "MacScheduler":
        """Start recording per-round PRB utilization into ``registry``."""
        self._metrics = registry
        self._cell = cell
        self._round = 0
        return self

    def _observe(self, alloc: dict[str, int], budget: int) -> None:
        """Record one scheduling round (no-op until metrics are bound)."""
        m = self._metrics
        if m is None:
            return
        granted = sum(alloc.values())
        self._round += 1
        m.counter("radio.sched.rounds", help="scheduling rounds run").inc(
            cell=self._cell
        )
        m.counter("radio.sched.prbs_granted", help="PRBs granted").inc(
            granted, cell=self._cell
        )
        if budget > 0:
            util = granted / budget
            m.histogram(
                "radio.prb_utilization",
                help="fraction of the PRB budget granted per round",
                buckets=RATIO_BUCKETS,
            ).observe(util, cell=self._cell)
            m.series(
                "radio.prb_utilization_tti",
                help="per-round (TTI-batch) PRB utilization",
            ).append(self._round, util, cell=self._cell)
        for ue_id, prbs in sorted(alloc.items()):
            m.counter("radio.ue.prbs_granted", help="PRBs granted per UE").inc(
                prbs, cell=self._cell, ue=ue_id
            )

    @staticmethod
    def _validate(demands: list[UeDemand], budget: int) -> None:
        if budget < 0:
            raise ValueError(f"negative PRB budget: {budget}")
        ids = [d.ue_id for d in demands]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate UE ids in demand list: {ids}")


class RoundRobinScheduler(MacScheduler):
    """Equal-share allocation with a rotating remainder.

    Water-filling: UEs that want less than an equal share release the excess
    to the others, so no PRB is wasted while any demand is unmet.
    """

    def __init__(self) -> None:
        self._rotation = 0

    def allocate(self, demands: list[UeDemand], budget: int) -> dict[str, int]:
        self._validate(demands, budget)
        alloc = {d.ue_id: 0 for d in demands}
        remaining = {d.ue_id: d.prbs_wanted for d in demands}
        left = budget
        # Water-fill: repeatedly split what's left among still-hungry UEs.
        while left > 0:
            hungry = [uid for uid, want in remaining.items() if want > 0]
            if not hungry:
                break
            share, extra = divmod(left, len(hungry))
            if share == 0:
                # Fewer PRBs than hungry UEs: rotate who gets the leftovers.
                order = sorted(hungry)
                start = self._rotation % len(order)
                for i in range(extra):
                    uid = order[(start + i) % len(order)]
                    grant = min(1, remaining[uid])
                    alloc[uid] += grant
                    remaining[uid] -= grant
                    left -= grant
                self._rotation += 1
                break
            granted_any = False
            for uid in hungry:
                grant = min(share, remaining[uid])
                if grant:
                    alloc[uid] += grant
                    remaining[uid] -= grant
                    left -= grant
                    granted_any = True
            if not granted_any:
                break
        self._observe(alloc, budget)
        return alloc

    def allocate_rounds(
        self, demands: list[UeDemand], budget: int, n_rounds: int
    ) -> np.ndarray:
        """Vectorized multi-round grants for the saturating-demand case.

        When every UE could absorb the whole budget (how the gNB drives the
        scheduler for iperf-style saturation) and no metrics are bound, the
        per-round water-fill reduces to :func:`round_robin_rounds` -- one
        numpy expression for all rounds. Any other shape (partial demands,
        bound metrics whose per-round observations must be preserved) falls
        back to the bit-identical per-round loop.
        """
        if n_rounds < 0:
            raise ValueError(f"negative round count: {n_rounds}")
        saturating = bool(demands) and all(
            d.prbs_wanted >= budget for d in demands
        )
        if self._metrics is not None or not saturating or n_rounds == 0:
            return super().allocate_rounds(demands, budget, n_rounds)
        self._validate(demands, budget)
        ids = [d.ue_id for d in demands]
        order = sorted(range(len(ids)), key=ids.__getitem__)
        sorted_pos = np.empty(len(ids), dtype=np.int64)
        sorted_pos[order] = np.arange(len(ids), dtype=np.int64)
        grants, self._rotation = round_robin_rounds(
            len(ids), budget, n_rounds, self._rotation, sorted_pos
        )
        return grants


class ProportionalFairScheduler(MacScheduler):
    """Weights PRB shares by instantaneous rate over trailing average rate.

    With static per-UE channel asymmetry this converges to unequal shares --
    the "uneven user allocation" seen in the paper's 4G two-laptop runs.
    """

    def __init__(self, ewma_alpha: float = 0.1) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha out of (0,1]: {ewma_alpha}")
        self.ewma_alpha = ewma_alpha
        self._avg_rate: dict[str, float] = {}

    def allocate(self, demands: list[UeDemand], budget: int) -> dict[str, int]:
        self._validate(demands, budget)
        alloc = {d.ue_id: 0 for d in demands}
        active = [d for d in demands if d.prbs_wanted > 0]
        if not active or budget == 0:
            self._observe(alloc, budget)
            return alloc
        # PF metric: instantaneous achievable rate / trailing average.
        metrics = np.array(
            [d.cqi / max(self._avg_rate.get(d.ue_id, 1e-9), 1e-9) for d in active]
        )
        weights = metrics / metrics.sum()
        grants = np.floor(weights * budget).astype(int)
        # Distribute the rounding remainder to the highest-metric UEs.
        for i in np.argsort(-metrics)[: budget - int(grants.sum())]:
            grants[i] += 1
        for d, g in zip(active, grants):
            granted = int(min(g, d.prbs_wanted))
            alloc[d.ue_id] = granted
        # Redistribute any released PRBs to UEs with unmet demand.
        left = budget - sum(alloc.values())
        for d in sorted(active, key=lambda d: -d.cqi):
            if left <= 0:
                break
            extra = min(left, d.prbs_wanted - alloc[d.ue_id])
            if extra > 0:
                alloc[d.ue_id] += extra
                left -= extra
        # Update trailing averages with the realized (cqi-weighted) rate.
        for d in active:
            realized = alloc[d.ue_id] * d.cqi
            prev = self._avg_rate.get(d.ue_id, realized or 1.0)
            self._avg_rate[d.ue_id] = (
                (1 - self.ewma_alpha) * prev + self.ewma_alpha * realized
            )
        self._observe(alloc, budget)
        return alloc
