"""MAC-layer PRB scheduling.

Each scheduling round (one slot batch) the scheduler divides a PRB budget
among UEs with pending uplink demand. Two disciplines are provided:

* :class:`RoundRobinScheduler` -- equal shares, rotating the remainder, which
  is how srsRAN's default uplink scheduler behaves for saturating flows and
  what produces the "fair sharing" / "balanced performance" the paper reports
  for the two-user 5G experiments.
* :class:`ProportionalFairScheduler` -- weights shares by instantaneous
  channel quality over average realized rate; included because the 4G
  two-laptop runs show "uneven user allocation" (a PF-like capture effect).

Invariant (property-tested): allocations never exceed the budget and sum to
``min(budget, total demand in PRBs)`` -- PRBs are conserved.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.metrics import RATIO_BUCKETS, MetricsRegistry


@dataclass(frozen=True)
class UeDemand:
    """One UE's demand in a scheduling round.

    Attributes
    ----------
    ue_id:
        Stable identifier used for rotation/fairness state.
    prbs_wanted:
        PRBs the UE could use this round (``None``/large = saturating).
    cqi:
        Instantaneous channel quality (used by proportional-fair).
    """

    ue_id: str
    prbs_wanted: int
    cqi: int = 10

    def __post_init__(self) -> None:
        if self.prbs_wanted < 0:
            raise ValueError(f"negative PRB demand: {self.prbs_wanted}")


class MacScheduler(ABC):
    """Allocates a PRB budget among demanding UEs each round."""

    #: Unbound by default; the scheduling loop stays observation-free until
    #: :meth:`bind_metrics` is called (one ``is None`` branch per round).
    _metrics: Optional[MetricsRegistry] = None
    _cell: str = ""
    _round: int = 0

    @abstractmethod
    def allocate(self, demands: list[UeDemand], budget: int) -> dict[str, int]:
        """Return ``{ue_id: prbs}``; total never exceeds ``budget``."""

    def bind_metrics(
        self, registry: MetricsRegistry, cell: str = ""
    ) -> "MacScheduler":
        """Start recording per-round PRB utilization into ``registry``."""
        self._metrics = registry
        self._cell = cell
        self._round = 0
        return self

    def _observe(self, alloc: dict[str, int], budget: int) -> None:
        """Record one scheduling round (no-op until metrics are bound)."""
        m = self._metrics
        if m is None:
            return
        granted = sum(alloc.values())
        self._round += 1
        m.counter("radio.sched.rounds", help="scheduling rounds run").inc(
            cell=self._cell
        )
        m.counter("radio.sched.prbs_granted", help="PRBs granted").inc(
            granted, cell=self._cell
        )
        if budget > 0:
            util = granted / budget
            m.histogram(
                "radio.prb_utilization",
                help="fraction of the PRB budget granted per round",
                buckets=RATIO_BUCKETS,
            ).observe(util, cell=self._cell)
            m.series(
                "radio.prb_utilization_tti",
                help="per-round (TTI-batch) PRB utilization",
            ).append(self._round, util, cell=self._cell)
        for ue_id, prbs in sorted(alloc.items()):
            m.counter("radio.ue.prbs_granted", help="PRBs granted per UE").inc(
                prbs, cell=self._cell, ue=ue_id
            )

    @staticmethod
    def _validate(demands: list[UeDemand], budget: int) -> None:
        if budget < 0:
            raise ValueError(f"negative PRB budget: {budget}")
        ids = [d.ue_id for d in demands]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate UE ids in demand list: {ids}")


class RoundRobinScheduler(MacScheduler):
    """Equal-share allocation with a rotating remainder.

    Water-filling: UEs that want less than an equal share release the excess
    to the others, so no PRB is wasted while any demand is unmet.
    """

    def __init__(self) -> None:
        self._rotation = 0

    def allocate(self, demands: list[UeDemand], budget: int) -> dict[str, int]:
        self._validate(demands, budget)
        alloc = {d.ue_id: 0 for d in demands}
        remaining = {d.ue_id: d.prbs_wanted for d in demands}
        left = budget
        # Water-fill: repeatedly split what's left among still-hungry UEs.
        while left > 0:
            hungry = [uid for uid, want in remaining.items() if want > 0]
            if not hungry:
                break
            share, extra = divmod(left, len(hungry))
            if share == 0:
                # Fewer PRBs than hungry UEs: rotate who gets the leftovers.
                order = sorted(hungry)
                start = self._rotation % len(order)
                for i in range(extra):
                    uid = order[(start + i) % len(order)]
                    grant = min(1, remaining[uid])
                    alloc[uid] += grant
                    remaining[uid] -= grant
                    left -= grant
                self._rotation += 1
                break
            granted_any = False
            for uid in hungry:
                grant = min(share, remaining[uid])
                if grant:
                    alloc[uid] += grant
                    remaining[uid] -= grant
                    left -= grant
                    granted_any = True
            if not granted_any:
                break
        self._observe(alloc, budget)
        return alloc


class ProportionalFairScheduler(MacScheduler):
    """Weights PRB shares by instantaneous rate over trailing average rate.

    With static per-UE channel asymmetry this converges to unequal shares --
    the "uneven user allocation" seen in the paper's 4G two-laptop runs.
    """

    def __init__(self, ewma_alpha: float = 0.1) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha out of (0,1]: {ewma_alpha}")
        self.ewma_alpha = ewma_alpha
        self._avg_rate: dict[str, float] = {}

    def allocate(self, demands: list[UeDemand], budget: int) -> dict[str, int]:
        self._validate(demands, budget)
        alloc = {d.ue_id: 0 for d in demands}
        active = [d for d in demands if d.prbs_wanted > 0]
        if not active or budget == 0:
            self._observe(alloc, budget)
            return alloc
        # PF metric: instantaneous achievable rate / trailing average.
        metrics = np.array(
            [d.cqi / max(self._avg_rate.get(d.ue_id, 1e-9), 1e-9) for d in active]
        )
        weights = metrics / metrics.sum()
        grants = np.floor(weights * budget).astype(int)
        # Distribute the rounding remainder to the highest-metric UEs.
        for i in np.argsort(-metrics)[: budget - int(grants.sum())]:
            grants[i] += 1
        for d, g in zip(active, grants):
            granted = int(min(g, d.prbs_wanted))
            alloc[d.ue_id] = granted
        # Redistribute any released PRBs to UEs with unmet demand.
        left = budget - sum(alloc.values())
        for d in sorted(active, key=lambda d: -d.cqi):
            if left <= 0:
                break
            extra = min(left, d.prbs_wanted - alloc[d.ue_id])
            if extra > 0:
                alloc[d.ue_id] += extra
                left -= extra
        # Update trailing averages with the realized (cqi-weighted) rate.
        for d in active:
            realized = alloc[d.ue_id] * d.cqi
            prev = self._avg_rate.get(d.ue_id, realized or 1.0)
            self._avg_rate[d.ue_id] = (
                (1 - self.ewma_alpha) * prev + self.ewma_alpha * realized
            )
        self._observe(alloc, budget)
        return alloc
