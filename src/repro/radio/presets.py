"""Calibration constants and paper anchors for the radio model.

Single source of truth for every number fitted against the paper's measured
results, with the anchor values recorded next to the constants they justify.
The benchmark harness imports :data:`PAPER_ANCHORS` to print paper-vs-
measured rows, and the deployment builder imports the front-end and channel
presets.

Anchors (from the paper's Section 4.1):

==============  ======  ===========  ============
Configuration   Device  Bandwidth    Paper (Mbps)
==============  ======  ===========  ============
4G FDD single   phone   20 MHz       43.83
4G FDD single   laptop  20 MHz       10.41
4G FDD single   RPi     20 MHz        2.23
5G FDD single   phone   20 MHz       58.89
5G FDD single   RPi     20 MHz       52.36
5G FDD single   laptop  20 MHz       40.83
5G TDD single   RPi     50 MHz       65.97
5G TDD single   laptop  50 MHz       58.31
5G TDD single   phone   50 MHz       14.40
==============  ======  ===========  ============

Slicing (40 MHz 5G TDD, Fig. 6): RPi1 4.95 -> 34.73 Mbps across 10 % -> 90 %
PRB share, RPi2 5.14 -> 43.47; 50/50 gives 23.91 / 25.22; sample SD 3-5 Mbps.

Two-user (Fig. 5): 5G FDD laptops scale 9.9 -> 45.7 Mbps aggregate, RPis peak
45.4 at 20 MHz, "fair sharing"; 5G TDD laptops 65.2 at 40 MHz then drop at
50 MHz ("SDR limitations"), RPis peak 53.8; 4G smartphones peak 35.5 at
15 MHz then drop at 20 MHz ("SDR sampling constraints"), laptops "uneven
user allocation".
"""

from __future__ import annotations

from repro.radio.channel import ChannelModel
from repro.radio.sdr import SdrFrontEnd

# ---------------------------------------------------------------------------
# SDR front ends.
# ---------------------------------------------------------------------------

#: The 5G cells run the B210 at NR sample rates; 46.08 MS/s (about a 37.5 MHz
#: carrier) is comfortably sustainable, and the derating above it produces
#: the single-user 50 MHz penalty and the two-user 50 MHz TDD drop.
SDR_5G = SdrFrontEnd(
    name="USRP B210 (NR)",
    max_sample_rate_msps=61.44,
    sustainable_rate_msps=46.08,
    multi_ue_penalty=0.25,
)

#: The legacy 4G deployment's eNB host keeps up to ~15 MHz comfortably; at
#: 20 MHz (23-25 MS/s) it runs hot, and with two smartphones decoding load
#: pushes it over -- the paper's "drop at 20 MHz, likely due to SDR sampling
#: constraints" (Fig. 5, 4G panel).
SDR_4G = SdrFrontEnd(
    name="USRP B210 (LTE host)",
    max_sample_rate_msps=30.72,
    sustainable_rate_msps=18.43,
    multi_ue_penalty=0.50,
)

# ---------------------------------------------------------------------------
# Channel operating points.
# ---------------------------------------------------------------------------

#: LTE uplink runs around CQI 8 (16QAM class): 100 PRB x 168 kRE/s x 3.32 b/RE
#: x 0.86 = 48.0 Mbps PHY ceiling at 20 MHz; the phone's 0.91 host efficiency
#: lands on the 43.83 anchor.
LTE_CHANNEL = ChannelModel(mean_cqi=8.0, cqi_sigma=0.6, fading_sigma=0.07)

#: NR uplink runs around CQI 10: 106 PRB x 168 kRE/s x 4.52 b/RE x 0.86 =
#: 69.3 Mbps ceiling at 20 MHz FDD; device efficiencies 0.85/0.757/0.80+cap
#: land on the 58.89 / 52.36 / 40.83 anchors. At 40 MHz TDD (106 PRB, 30 kHz,
#: 45 % uplink) the ceiling is 62.3 Mbps; at 50 MHz, 78.2 Mbps before the SDR
#: derate.
NR_CHANNEL = ChannelModel(mean_cqi=10.0, cqi_sigma=0.7, fading_sigma=0.06)

#: Fig. 6's two Raspberry Pi units are not identical: RPi1 saturates near
#: 35 Mbps and sits ~4 % below nominal link gain, RPi2 caps near 44 Mbps and
#: sits ~2 % above. These are per-unit hardware asymmetries (cable, antenna
#: placement, thermals), not device-class properties.
RPI1_CHANNEL = ChannelModel(mean_cqi=10.0, cqi_sigma=0.7, fading_sigma=0.07, gain=0.96)
RPI2_CHANNEL = ChannelModel(mean_cqi=10.0, cqi_sigma=0.7, fading_sigma=0.07, gain=1.02)
RPI1_UNIT_CAP_BPS = 35.0e6
RPI2_UNIT_CAP_BPS = 44.0e6

#: The 4G two-laptop runs show "uneven user allocation": persistent link-gain
#: asymmetry through the proportional-fair scheduler.
LAPTOP_A_CHANNEL = ChannelModel(mean_cqi=8.0, cqi_sigma=0.6, fading_sigma=0.08, gain=1.05)
LAPTOP_B_CHANNEL = ChannelModel(mean_cqi=8.0, cqi_sigma=0.6, fading_sigma=0.08, gain=0.93)

# ---------------------------------------------------------------------------
# Paper anchors, for benchmark reporting.
# ---------------------------------------------------------------------------

#: (figure, network, device, bandwidth_mhz) -> paper-reported Mbps.
PAPER_ANCHORS: dict[tuple[str, str, str, int], float] = {
    ("fig4", "4g-fdd", "smartphone", 20): 43.83,
    ("fig4", "4g-fdd", "laptop", 20): 10.41,
    ("fig4", "4g-fdd", "raspberry-pi", 20): 2.23,
    ("fig4", "5g-fdd", "smartphone", 20): 58.89,
    ("fig4", "5g-fdd", "raspberry-pi", 20): 52.36,
    ("fig4", "5g-fdd", "laptop", 20): 40.83,
    ("fig4", "5g-tdd", "raspberry-pi", 50): 65.97,
    ("fig4", "5g-tdd", "laptop", 50): 58.31,
    ("fig4", "5g-tdd", "smartphone", 50): 14.40,
    ("fig5", "4g-fdd", "smartphone", 15): 35.5,
    ("fig5", "4g-fdd", "laptop", 15): 36.1,
    ("fig5", "5g-fdd", "laptop", 20): 45.7,
    ("fig5", "5g-fdd", "raspberry-pi", 20): 45.4,
    ("fig5", "5g-tdd", "laptop", 40): 65.2,
    ("fig5", "5g-tdd", "raspberry-pi", 40): 53.8,
}

#: Fig. 6 anchors: PRB share (percent) -> (RPi1 Mbps, RPi2 Mbps). RPi2's value
#: is at the complementary share (100 - pct for RPi1's configuration).
FIG6_ANCHORS: dict[int, tuple[float, float]] = {
    10: (4.95, 5.14),
    50: (23.91, 25.22),
    90: (34.73, 43.47),
}

#: Bandwidth grids per network, as tested in the paper.
BANDWIDTH_GRID_MHZ: dict[str, list[int]] = {
    "4g-fdd": [5, 10, 15, 20],
    "5g-fdd": [5, 10, 15, 20],
    "5g-tdd": [10, 15, 20, 30, 40, 50],
}
