"""Contiguous per-UE state arrays and the vectorized sampling kernel.

This is the million-UE hot path. Instead of walking Python ``UserEquipment``
objects per sample, the radio layer packs the per-UE quantities that the
throughput model reads -- channel operating point, fading width, link gain,
modem/host efficiency, uplink cap -- into parallel ``float64`` arrays
(struct-of-arrays layout, one contiguous vector per field), and computes a
whole ``(n_samples, n_ues)`` sample matrix with array-at-a-time numpy.

Bit-identity contract (parity-tested in
``tests/radio/test_vectorized_parity.py``): the kernel consumes the *same*
RNG stream in the *same* order as the scalar per-UE loop. The scalar loop
draws, per sample and per UE, one ``rng.normal`` (CQI) then one
``rng.lognormal`` (fading); numpy implements both as
``loc + scale * standard_normal`` (and ``exp`` of that), filling requested
shapes sequentially from the bit stream. A single
``rng.standard_normal((n_samples, n_ues, 2))`` therefore yields exactly the
scalar draw sequence in C order, and applying ``loc + scale * z`` elementwise
reproduces the scalar results bit-for-bit. The arithmetic below multiplies
factors in the same left-to-right order as the scalar expressions so IEEE
rounding agrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.radio.duplex import DuplexMode
from repro.radio.phy import CarrierConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.ue import UserEquipment


def rate_per_prb_table(carrier: CarrierConfig) -> np.ndarray:
    """Uplink bits/s per PRB indexed by ``cqi - 1`` (CQI 1..15)."""
    return np.array(
        [carrier.uplink_rate_per_prb(cqi) for cqi in range(1, 16)], dtype=np.float64
    )


@dataclass
class UeStateArrays:
    """Struct-of-arrays snapshot of everything the sampler reads per UE.

    Attributes
    ----------
    ue_ids:
        Stable identifiers, column order of every derived matrix.
    mean_cqi, cqi_sigma:
        Per-UE channel operating point (CQI draw parameters).
    fading_sigma:
        Sigma of the multiplicative lognormal fast-fading term.
    gain:
        Static per-UE link gain.
    combined_eff:
        Modem x host efficiency applied to the granted PHY rate.
    cap_bps:
        Hard uplink cap (``inf`` where uncapped). Downlink ignores it.
    """

    ue_ids: list[str]
    mean_cqi: np.ndarray
    cqi_sigma: np.ndarray
    fading_sigma: np.ndarray
    gain: np.ndarray
    combined_eff: np.ndarray
    cap_bps: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.ue_ids)
        for field_name in (
            "mean_cqi", "cqi_sigma", "fading_sigma", "gain",
            "combined_eff", "cap_bps",
        ):
            arr = np.ascontiguousarray(getattr(self, field_name), dtype=np.float64)
            if arr.shape != (n,):
                raise ValueError(
                    f"UeStateArrays.{field_name}: expected shape ({n},), "
                    f"got {arr.shape}"
                )
            setattr(self, field_name, arr)
        if n and (self.mean_cqi.min() < 1.0 or self.mean_cqi.max() > 15.0):
            raise ValueError("mean_cqi out of the CQI ladder [1, 15]")
        if n and (self.cqi_sigma.min() < 0.0 or self.fading_sigma.min() < 0.0):
            raise ValueError("sigmas must be non-negative")
        if n and self.gain.min() <= 0.0:
            raise ValueError("gain must be positive")

    @property
    def n_ues(self) -> int:
        return len(self.ue_ids)

    @classmethod
    def from_ues(
        cls,
        ues: Sequence["UserEquipment"],
        technology: str,
        duplex: DuplexMode,
    ) -> "UeStateArrays":
        """Pack attached UE objects into contiguous arrays (one pass)."""
        return cls(
            ue_ids=[ue.ue_id for ue in ues],
            mean_cqi=np.array([ue.channel.mean_cqi for ue in ues]),
            cqi_sigma=np.array([ue.channel.cqi_sigma for ue in ues]),
            fading_sigma=np.array([ue.channel.fading_sigma for ue in ues]),
            gain=np.array([ue.channel.gain for ue in ues]),
            combined_eff=np.array(
                [ue.combined_efficiency(technology, duplex) for ue in ues]
            ),
            cap_bps=np.array([ue.uplink_cap_bps(technology, duplex) for ue in ues]),
        )

    @classmethod
    def broadcast(
        cls,
        ue_ids: list[str],
        mean_cqi: np.ndarray,
        gain: np.ndarray,
        cqi_sigma: float,
        fading_sigma: float,
        combined_eff: float,
        cap_bps: float,
    ) -> "UeStateArrays":
        """Build a population-sized state from per-UE draws plus shared
        device-class scalars (no ``UserEquipment`` objects involved)."""
        n = len(ue_ids)
        return cls(
            ue_ids=ue_ids,
            mean_cqi=mean_cqi,
            cqi_sigma=np.full(n, float(cqi_sigma)),
            fading_sigma=np.full(n, float(fading_sigma)),
            gain=gain,
            combined_eff=np.full(n, float(combined_eff)),
            cap_bps=np.full(n, float(cap_bps)),
        )


def sample_throughput_matrix(
    state: UeStateArrays,
    grants: np.ndarray,
    z: np.ndarray,
    rate_per_prb: np.ndarray,
    derate: float,
    multi_ue_eff: float,
    jitter_scale: float,
    rate_scale: Optional[float] = None,
    apply_caps: bool = True,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized per-second throughput samples for a whole cell.

    Parameters
    ----------
    state:
        Per-UE state arrays (``U`` UEs).
    grants:
        ``(S, U)`` integer PRB grants, one row per scheduling round.
    z:
        ``(S, U, 2)`` standard-normal draws; ``z[..., 0]`` feeds the CQI
        draw and ``z[..., 1]`` the fading draw, matching the scalar loop's
        per-UE interleaving of ``rng.normal`` then ``rng.lognormal``.
    rate_per_prb:
        15-entry CQI -> bits/s-per-PRB table (see :func:`rate_per_prb_table`).
    derate, multi_ue_eff, jitter_scale:
        Cell-wide SDR derate, multi-UE efficiency, and fading inflation.
    rate_scale:
        ``None`` for uplink; the downlink/uplink slot-ratio for downlink
        (applied at the same position in the product as the scalar path).
    apply_caps:
        Clamp to per-UE hard caps (uplink only; downlink is gNB-transmitted).
    out:
        Optional preallocated ``(S, U)`` float64 output buffer.

    Returns the ``(S, U)`` sample matrix (bits/s, non-negative).
    """
    n_samples, n_ues = grants.shape
    if z.shape != (n_samples, n_ues, 2):
        raise ValueError(
            f"z shape {z.shape} != {(n_samples, n_ues, 2)} for grants {grants.shape}"
        )
    if n_ues != state.n_ues:
        raise ValueError(f"grants columns {n_ues} != state UEs {state.n_ues}")

    # CQI draw: clip(rint(mean + sigma*z), 1, 15), exactly ChannelModel.draw_cqi.
    cqi = np.clip(
        np.rint(state.mean_cqi[None, :] + state.cqi_sigma[None, :] * z[:, :, 0]),
        1, 15,
    ).astype(np.int64)

    # PHY rate: prbs * rate(cqi) [* dl_over_ul] * derate * multi_ue_eff * gain,
    # multiplied left-to-right in the scalar expression's order.
    phy = grants * rate_per_prb[cqi - 1]
    if rate_scale is not None:
        phy = phy * rate_scale
    phy = phy * derate
    phy = phy * multi_ue_eff
    phy = phy * state.gain[None, :]

    realized = phy * state.combined_eff[None, :]
    if apply_caps:
        realized = np.minimum(realized, state.cap_bps[None, :])

    # Mean-one lognormal fading: exp(-sigma^2/2 + sigma*z), sigma inflated
    # by the SDR jitter scale -- exactly ChannelModel.draw_fading.
    sigma = state.fading_sigma * jitter_scale
    fade = np.exp((-0.5 * sigma * sigma)[None, :] + sigma[None, :] * z[:, :, 1])

    return np.maximum(realized * fade, 0.0, out=out)
