"""Private 4G/5G wireless network simulation.

This package replaces the paper's physical testbed -- srsRAN gNodeBs on USRP
B200/B210 software-defined radios, an Open5GS standalone core, sysmoISIM SIM
cards, and Raspberry Pi / laptop / smartphone user equipment with SIM7600G-H
(4G) and RM530N-GL (5G) USB modems -- with a calibrated model of the same
pipeline:

PHY (PRB grids, numerology, spectral efficiency, duplexing)
  -> MAC scheduler (per-slot PRB allocation, slicing)
  -> SDR front-end constraints (sample-rate ceilings)
  -> modem/host device constraints (the paper's device-type differences)
  -> 5G core (registration, PDU sessions, slice binding)
  -> iperf3-style uplink measurement.

Calibration constants live in :mod:`repro.radio.presets` and are documented
against the paper's measured anchors (Figs 4-6).
"""

from repro.radio.phy import (
    CarrierConfig,
    Numerology,
    prb_count,
    re_rate,
    spectral_efficiency,
)
from repro.radio.duplex import DuplexMode, TddPattern, FDD_FULL_UPLINK, TDD_UL_HEAVY
from repro.radio.sdr import SdrFrontEnd, USRP_B200, USRP_B210
from repro.radio.modems import Modem, SIM7600G_H, RM530N_GL, PHONE_4G_INTERNAL, PHONE_5G_INTERNAL
from repro.radio.devices import Device, DeviceClass, LAPTOP, RASPBERRY_PI, SMARTPHONE
from repro.radio.sim_cards import SimCard, SimProvisioner, AuthenticationError
from repro.radio.core5g import Core5G, RegistrationError, SessionError
from repro.radio.scheduler import MacScheduler, RoundRobinScheduler, ProportionalFairScheduler
from repro.radio.slicing import NetworkSlice, SliceConfig, SlicePolicy
from repro.radio.ue import UserEquipment
from repro.radio.state import UeStateArrays, rate_per_prb_table, sample_throughput_matrix
from repro.radio.scheduler import round_robin_rounds
from repro.radio.gnb import GNodeB
from repro.radio.network import PrivateCellularNetwork, NetworkDeployment
from repro.radio.iperf import IperfClient, IperfResult, run_downlink_test, run_uplink_test
from repro.radio.population import (
    CellPopulation,
    Distribution,
    RandomVariable,
    UEPopulation,
)

__all__ = [
    "CarrierConfig",
    "Numerology",
    "prb_count",
    "re_rate",
    "spectral_efficiency",
    "DuplexMode",
    "TddPattern",
    "FDD_FULL_UPLINK",
    "TDD_UL_HEAVY",
    "SdrFrontEnd",
    "USRP_B200",
    "USRP_B210",
    "Modem",
    "SIM7600G_H",
    "RM530N_GL",
    "PHONE_4G_INTERNAL",
    "PHONE_5G_INTERNAL",
    "Device",
    "DeviceClass",
    "LAPTOP",
    "RASPBERRY_PI",
    "SMARTPHONE",
    "SimCard",
    "SimProvisioner",
    "AuthenticationError",
    "Core5G",
    "RegistrationError",
    "SessionError",
    "MacScheduler",
    "RoundRobinScheduler",
    "ProportionalFairScheduler",
    "NetworkSlice",
    "SliceConfig",
    "SlicePolicy",
    "UserEquipment",
    "GNodeB",
    "PrivateCellularNetwork",
    "NetworkDeployment",
    "IperfClient",
    "IperfResult",
    "run_uplink_test",
    "run_downlink_test",
    "UeStateArrays",
    "rate_per_prb_table",
    "sample_throughput_matrix",
    "round_robin_rounds",
    "CellPopulation",
    "Distribution",
    "RandomVariable",
    "UEPopulation",
]
