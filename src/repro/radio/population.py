"""Declarative UE populations: "50k UEs across 20 cells" without 50k objects.

The paper's testbed attaches a handful of hand-built ``UserEquipment``
objects; the scale path needs populations described *statistically* and
realized straight into the contiguous state arrays the vectorized sampler
consumes. The contract follows AsyncFlow's request-generator input
(``RVConfig``/``RqsGeneratorInput``): named distributions with validated
parameters, drawn from named RNG streams so population realization never
perturbs any other subsystem's randomness.

    pop = UEPopulation(
        n_cells=20,
        ues_per_cell=RandomVariable(2500.0, Distribution.POISSON),
        network="5g-tdd",
        bandwidth_mhz=40.0,
    )
    cells = pop.realize(RngRegistry(seed))       # 20 CellPopulations
    matrix = cells[0].uplink_matrix(rng, 30)     # (n_ues, 30) bits/s

Realization cost is O(total UEs) numpy draws; sampling cost is one
vectorized kernel call per cell. ``CellPopulation.materialize`` builds real
``UserEquipment`` objects for the first ``k`` UEs so parity tests can pin
the array path to the object path bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.radio.channel import ChannelModel
from repro.radio.duplex import DuplexMode, TDD_UL_HEAVY
from repro.radio.phy import CarrierConfig
from repro.radio.presets import LTE_CHANNEL, NR_CHANNEL, SDR_4G, SDR_5G
from repro.radio.scheduler import round_robin_rounds
from repro.radio.sdr import SdrFrontEnd
from repro.radio.state import (
    UeStateArrays,
    rate_per_prb_table,
    sample_throughput_matrix,
)
from repro.radio.ue import UserEquipment
from repro.simkernel.rng import RngRegistry
from repro.simkernel.streams import cell_stream, population_stream

from repro.radio.gnb import MULTI_UE_OVERHEAD


class Distribution(str, Enum):
    """Canonical distribution names for population random variables.

    String-valued (AsyncFlow's ``Distribution`` idiom) so configs can say
    ``"poisson"`` and a typo raises instead of silently defaulting.
    """

    CONSTANT = "constant"
    POISSON = "poisson"
    NORMAL = "normal"
    LOG_NORMAL = "log_normal"
    EXPONENTIAL = "exponential"


@dataclass(frozen=True)
class RandomVariable:
    """A validated distribution spec: ``RandomVariable(mean, distribution)``.

    Attributes
    ----------
    mean:
        Target mean of the drawn values.
    distribution:
        One of :class:`Distribution`.
    variance:
        Optional; defaults per family: ``normal`` -> ``mean`` (AsyncFlow's
        convention), ``log_normal`` -> ``mean``; ignored for ``poisson``
        (variance == mean by definition), ``exponential`` (``mean**2``) and
        ``constant`` (0).
    """

    mean: float
    distribution: Distribution = Distribution.POISSON
    variance: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.mean, (int, float)) or isinstance(self.mean, bool):
            raise TypeError(f"mean must be a number, got {self.mean!r}")
        object.__setattr__(self, "mean", float(self.mean))
        dist = Distribution(self.distribution)
        object.__setattr__(self, "distribution", dist)
        if dist in (
            Distribution.POISSON, Distribution.LOG_NORMAL, Distribution.EXPONENTIAL
        ) and self.mean <= 0:
            raise ValueError(f"{dist.value} mean must be positive: {self.mean}")
        if self.variance is not None and self.variance < 0:
            raise ValueError(f"variance must be non-negative: {self.variance}")
        if self.variance is None and dist in (
            Distribution.NORMAL, Distribution.LOG_NORMAL
        ):
            object.__setattr__(self, "variance", self.mean)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values as float64 (counts included, for clipping)."""
        if n < 0:
            raise ValueError(f"negative sample count: {n}")
        if self.distribution is Distribution.CONSTANT:
            return np.full(n, self.mean)
        if self.distribution is Distribution.POISSON:
            return rng.poisson(self.mean, size=n).astype(np.float64)
        if self.distribution is Distribution.NORMAL:
            assert self.variance is not None
            return rng.normal(self.mean, np.sqrt(self.variance), size=n)
        if self.distribution is Distribution.EXPONENTIAL:
            return rng.exponential(self.mean, size=n)
        # Log-normal, parameterized by the target mean/variance of the
        # *resulting* distribution: sigma^2 = ln(1 + v/m^2), mu = ln m - sigma^2/2.
        assert self.variance is not None
        m, v = self.mean, self.variance
        sigma2 = float(np.log1p(v / (m * m)))
        mu = float(np.log(m)) - 0.5 * sigma2
        return np.exp(rng.normal(mu, np.sqrt(sigma2), size=n))


#: Device-class scalars shared by every UE of a population cell; derived
#: from a template UE so the array path and the object path agree exactly.
@dataclass(frozen=True)
class _DeviceProfile:
    combined_eff: float
    cap_bps: float


@dataclass
class CellPopulation:
    """One cell's worth of realized population state.

    Holds the packed :class:`UeStateArrays` plus the carrier/SDR scalars the
    sampler needs. No ``UserEquipment`` objects exist unless
    :meth:`materialize` is called.
    """

    name: str
    carrier: CarrierConfig
    sdr: SdrFrontEnd
    state: UeStateArrays
    template: UserEquipment
    _rotation: int = 0
    _rate_table: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def n_ues(self) -> int:
        return self.state.n_ues

    def rate_table(self) -> np.ndarray:
        if self._rate_table is None:
            self._rate_table = rate_per_prb_table(self.carrier)
        return self._rate_table

    def grants_matrix(self, n_rounds: int) -> np.ndarray:
        """Round-robin saturating grants, advancing the rotation counter.

        Population ue_ids are zero-padded, so sorted order == column order
        and the closed-form :func:`round_robin_rounds` applies directly --
        no ``UeDemand`` objects, no scheduler instance.
        """
        grants, self._rotation = round_robin_rounds(
            self.n_ues,
            self.carrier.n_prbs,
            n_rounds,
            self._rotation,
            np.arange(self.n_ues, dtype=np.int64),
        )
        return grants

    def uplink_matrix(
        self, rng: np.random.Generator, n_samples: int
    ) -> np.ndarray:
        """Vectorized per-second uplink samples, ``(n_ues, n_samples)`` bits/s.

        Bit-identical to attaching :meth:`materialize`'d UEs to a
        round-robin :class:`~repro.radio.gnb.GNodeB` and calling
        ``uplink_samples`` with the same generator (parity-tested).
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive: {n_samples}")
        if self.n_ues == 0:
            raise ValueError(f"cell {self.name!r} has no UEs")
        n = self.n_ues
        derate = self.sdr.derate(self.carrier.bandwidth_mhz, active_ues=n)
        jitter = self.sdr.jitter_scale(self.carrier.bandwidth_mhz, active_ues=n)
        multi_ue_eff = max(0.4, 1.0 - MULTI_UE_OVERHEAD * (n - 1))
        grants = self.grants_matrix(n_samples)
        z = rng.standard_normal((n_samples, n, 2))
        samples = sample_throughput_matrix(
            self.state, grants, z, self.rate_table(),
            derate=derate, multi_ue_eff=multi_ue_eff, jitter_scale=jitter,
        )
        return np.ascontiguousarray(samples.T)

    def materialize(self, k: Optional[int] = None) -> list[UserEquipment]:
        """Instantiate real ``UserEquipment`` for the first ``k`` UEs.

        For parity tests and for feeding small sub-populations into code
        that still wants objects (chaos injectors, core sessions). Each UE
        reuses the template's device/modem/SIM and carries its drawn
        per-UE channel.
        """
        k = self.n_ues if k is None else k
        if not 0 <= k <= self.n_ues:
            raise ValueError(f"k out of [0, {self.n_ues}]: {k}")
        out = []
        for j in range(k):
            out.append(UserEquipment(
                ue_id=self.state.ue_ids[j],
                device=self.template.device,
                modem=self.template.modem,
                sim=self.template.sim,
                channel=ChannelModel(
                    mean_cqi=float(self.state.mean_cqi[j]),
                    cqi_sigma=float(self.state.cqi_sigma[j]),
                    fading_sigma=float(self.state.fading_sigma[j]),
                    gain=float(self.state.gain[j]),
                ),
                unit_cap_bps=None,
            ))
        return out


@dataclass(frozen=True)
class UEPopulation:
    """A statistical description of a UE fleet across many cells.

    Attributes
    ----------
    n_cells:
        Number of cells to realize.
    ues_per_cell:
        Distribution of UE counts per cell (draws are rounded and clipped
        to at least 1).
    network:
        ``"4g-fdd"``, ``"5g-fdd"`` or ``"5g-tdd"`` -- the deployment
        flavours of :class:`~repro.radio.network.NetworkDeployment`.
    bandwidth_mhz:
        Carrier bandwidth, validated against the PRB tables.
    device_class:
        Device kit for every UE (``network.device_kit`` names).
    mean_cqi:
        Per-UE channel operating point distribution, clipped to [1, 15].
    gain_spread:
        Per-UE link-gain distribution (mean ~1; clipped to > 0).
    stream_prefix:
        Prefix for the named RNG streams realization draws from.
    """

    n_cells: int = 1
    ues_per_cell: RandomVariable = field(
        default_factory=lambda: RandomVariable(100.0, Distribution.POISSON)
    )
    network: str = "5g-tdd"
    bandwidth_mhz: float = 40.0
    device_class: str = "raspberry-pi"
    mean_cqi: RandomVariable = field(
        default_factory=lambda: RandomVariable(10.0, Distribution.NORMAL, 0.25)
    )
    gain_spread: RandomVariable = field(
        default_factory=lambda: RandomVariable(1.0, Distribution.LOG_NORMAL, 0.0025)
    )
    stream_prefix: str = "population"

    def __post_init__(self) -> None:
        if self.n_cells <= 0:
            raise ValueError(f"n_cells must be positive: {self.n_cells}")
        key = self.network.lower()
        if key not in ("4g-fdd", "5g-fdd", "5g-tdd"):
            raise ValueError(
                f"unknown network {self.network!r}; valid: 4g-fdd, 5g-fdd, 5g-tdd"
            )
        # Validate carrier/SDR eagerly so misconfiguration fails at build.
        self._flavour()

    def _flavour(self) -> tuple[CarrierConfig, SdrFrontEnd, ChannelModel]:
        key = self.network.lower()
        if key == "4g-fdd":
            carrier = CarrierConfig("lte", self.bandwidth_mhz, DuplexMode.FDD)
            sdr, chan = SDR_4G, LTE_CHANNEL
        elif key == "5g-fdd":
            carrier = CarrierConfig("nr", self.bandwidth_mhz, DuplexMode.FDD)
            sdr, chan = SDR_5G, NR_CHANNEL
        else:
            carrier = CarrierConfig(
                "nr", self.bandwidth_mhz, DuplexMode.TDD, tdd_pattern=TDD_UL_HEAVY
            )
            sdr, chan = SDR_5G, NR_CHANNEL
        if not sdr.supports(self.bandwidth_mhz):
            raise ValueError(
                f"{sdr.name} cannot serve a {self.bandwidth_mhz} MHz carrier"
            )
        return carrier, sdr, chan

    def _template(self) -> UserEquipment:
        # Local import: network.py imports gnb/iperf; population must stay
        # importable from gnb's dependency layer.
        from repro.radio.network import device_kit
        from repro.radio.sim_cards import SimProvisioner

        carrier, _, chan = self._flavour()
        device, modem_4g, modem_5g = device_kit(self.device_class)
        modem = modem_4g if carrier.technology == "lte" else modem_5g
        sim = SimProvisioner(mnc="99").provision()
        return UserEquipment(
            ue_id="template", device=device, modem=modem, sim=sim, channel=chan
        )

    def cell_counts(self, rngs: RngRegistry) -> np.ndarray:
        """Per-cell UE counts from the ``<prefix>.cells`` stream.

        One vectorized draw covering every cell, so any consumer -- the
        single-process :meth:`realize` or each :mod:`repro.parallel`
        worker computing only its owned cells -- sees the identical count
        vector from the same master seed.
        """
        return np.maximum(
            np.rint(
                self.ues_per_cell.sample(
                    rngs.get(population_stream(self.stream_prefix, "cells")),
                    self.n_cells,
                )
            ).astype(np.int64),
            1,
        )

    def _cell_from_arrays(
        self,
        cell_index: int,
        n: int,
        mean_cqi: np.ndarray,
        gain: np.ndarray,
        carrier: CarrierConfig,
        sdr: SdrFrontEnd,
        template: UserEquipment,
        profile: _DeviceProfile,
    ) -> CellPopulation:
        chan = template.channel
        width = len(str(max(n - 1, 1)))
        ue_ids = [f"cell{cell_index:03d}-ue{j:0{width}d}" for j in range(n)]
        state = UeStateArrays.broadcast(
            ue_ids=ue_ids,
            mean_cqi=mean_cqi,
            gain=gain,
            cqi_sigma=chan.cqi_sigma,
            fading_sigma=chan.fading_sigma,
            combined_eff=profile.combined_eff,
            cap_bps=profile.cap_bps,
        )
        return CellPopulation(
            name=f"cell{cell_index:03d}",
            carrier=carrier,
            sdr=sdr,
            state=state,
            template=template,
        )

    def _device_profile(
        self, carrier: CarrierConfig, template: UserEquipment
    ) -> _DeviceProfile:
        tech, duplex = carrier.technology, carrier.duplex
        return _DeviceProfile(
            combined_eff=template.combined_efficiency(tech, duplex),
            cap_bps=template.uplink_cap_bps(tech, duplex),
        )

    def realize(self, rngs: RngRegistry) -> list[CellPopulation]:
        """Draw the whole population into per-cell state arrays.

        Uses three named streams -- ``<prefix>.cells`` (per-cell counts),
        ``<prefix>.channel`` (per-UE operating points) and
        ``<prefix>.gain`` (per-UE link gains) -- so same-master-seed
        realizations are byte-identical and independent of every other
        subsystem's draws.
        """
        carrier, sdr, _ = self._flavour()
        template = self._template()
        profile = self._device_profile(carrier, template)
        counts = self.cell_counts(rngs)
        chan_rng = rngs.get(population_stream(self.stream_prefix, "channel"))
        gain_rng = rngs.get(population_stream(self.stream_prefix, "gain"))
        cells = []
        for c, n in enumerate(counts):
            n = int(n)
            mean_cqi = np.clip(self.mean_cqi.sample(chan_rng, n), 1.0, 15.0)
            gain = np.maximum(self.gain_spread.sample(gain_rng, n), 1e-3)
            cells.append(self._cell_from_arrays(
                c, n, mean_cqi, gain, carrier, sdr, template, profile
            ))
        return cells

    def realize_cells(
        self,
        rngs: RngRegistry,
        cell_indices: Sequence[int],
        counts: Optional[np.ndarray] = None,
        stream_prefix: str = "shard",
    ) -> list[CellPopulation]:
        """Realize only the given cells, from **per-cell** named streams.

        This is the sharded-path counterpart of :meth:`realize`: cell
        ``c`` draws its per-UE operating points from
        ``<stream_prefix>.cell<ccc>.channel`` and its link gains from
        ``<stream_prefix>.cell<ccc>.gain`` -- streams keyed by the cell's
        stable index, never by which worker realizes it. A worker owning
        cells ``{3, 7}`` therefore realizes bit-identical state whether it
        shares the run with 0 or 7 other workers (the
        :mod:`repro.parallel` determinism invariant).

        Note the stream layout intentionally differs from
        :meth:`realize`'s shared sequential streams; the two paths are
        distinct canonical layouts, each internally deterministic.
        """
        carrier, sdr, _ = self._flavour()
        template = self._template()
        profile = self._device_profile(carrier, template)
        if counts is None:
            counts = self.cell_counts(rngs)
        if len(counts) != self.n_cells:
            raise ValueError(
                f"counts has {len(counts)} entries for {self.n_cells} cells"
            )
        cells = []
        for c in cell_indices:
            c = int(c)
            if not 0 <= c < self.n_cells:
                raise ValueError(
                    f"cell index {c} out of [0, {self.n_cells})"
                )
            n = int(counts[c])
            chan_rng = rngs.get(cell_stream(stream_prefix, c, "channel"))
            gain_rng = rngs.get(cell_stream(stream_prefix, c, "gain"))
            mean_cqi = np.clip(self.mean_cqi.sample(chan_rng, n), 1.0, 15.0)
            gain = np.maximum(self.gain_spread.sample(gain_rng, n), 1e-3)
            cells.append(self._cell_from_arrays(
                c, n, mean_cqi, gain, carrier, sdr, template, profile
            ))
        return cells

    @property
    def expected_total_ues(self) -> float:
        """Mean of the total UE count across cells (for sizing/reporting)."""
        return self.n_cells * max(self.ues_per_cell.mean, 1.0)
