"""Software-defined-radio front-end model (Ettus USRP B200/B210).

The testbed's gNodeBs front onto USRP B2xx SDRs over USB 3.0. The B2xx
family samples up to 61.44 MS/s, but sustaining the full rate over USB while
srsRAN keeps up in real time is marginal: the paper attributes the two-user
throughput drop at 50 MHz TDD (Fig. 5) and the 4G two-smartphone drop at
20 MHz (Fig. 5) to "SDR sampling constraints". We model this as a derating
factor on PHY throughput that kicks in as the required sample rate approaches
the sustainable ceiling and worsens with concurrently active UEs (more
PUSCH decoding work per slot).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ceiling on the fading-variance inflation from SDR overflow-recovery
#: cycles. Once the front end is permanently hot, every slot already sits
#: inside a recovery window and extra contention stops adding variance;
#: without a ceiling the per-UE term would grow without bound in dense
#: cells and drive the mean-one lognormal's median to zero.
JITTER_SCALE_CAP = 4.0


@dataclass(frozen=True)
class SdrFrontEnd:
    """An SDR front end with a sustainable sample-rate ceiling.

    Attributes
    ----------
    name:
        Model name.
    max_sample_rate_msps:
        Hardware maximum sample rate (mega-samples/s).
    sustainable_rate_msps:
        Rate sustainable in real time through the host's USB/driver stack
        without overflows; above this, soft degradation begins.
    multi_ue_penalty:
        Additional fractional derate per extra concurrently active UE when
        operating above the sustainable rate.
    """

    name: str
    max_sample_rate_msps: float
    sustainable_rate_msps: float
    multi_ue_penalty: float = 0.12

    def __post_init__(self) -> None:
        if self.sustainable_rate_msps > self.max_sample_rate_msps:
            raise ValueError("sustainable rate exceeds hardware maximum")
        if not 0.0 <= self.multi_ue_penalty < 1.0:
            raise ValueError(f"multi_ue_penalty out of range: {self.multi_ue_penalty}")

    def required_sample_rate_msps(self, bandwidth_mhz: float) -> float:
        """Sample rate needed for a given channel bandwidth.

        srsRAN uses a sampling rate of ~1.22x the channel bandwidth
        (e.g. 23.04 MS/s for 20 MHz, 61.44 MS/s for 50 MHz).
        """
        if bandwidth_mhz <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_mhz}")
        return 1.2288 * bandwidth_mhz

    def supports(self, bandwidth_mhz: float) -> bool:
        """Whether the hardware can be configured at this bandwidth at all."""
        return self.required_sample_rate_msps(bandwidth_mhz) <= self.max_sample_rate_msps

    def derate(self, bandwidth_mhz: float, active_ues: int = 1) -> float:
        """Multiplicative throughput factor in (0, 1].

        1.0 while the required sample rate is within the sustainable budget;
        above it, throughput degrades linearly with the overshoot and with
        the number of concurrently active UEs.
        """
        if active_ues < 1:
            raise ValueError(f"active_ues must be >= 1, got {active_ues}")
        needed = self.required_sample_rate_msps(bandwidth_mhz)
        if not self.supports(bandwidth_mhz):
            raise ValueError(
                f"{self.name} cannot sample {bandwidth_mhz} MHz "
                f"(needs {needed:.1f} MS/s > max {self.max_sample_rate_msps})"
            )
        if needed <= self.sustainable_rate_msps:
            return 1.0
        # Fractional overshoot of the sustainable budget in [0, 1].
        span = self.max_sample_rate_msps - self.sustainable_rate_msps
        overshoot = (needed - self.sustainable_rate_msps) / span if span > 0 else 1.0
        base_penalty = 0.10 * overshoot
        ue_penalty = self.multi_ue_penalty * overshoot * (active_ues - 1)
        return max(0.05, 1.0 - base_penalty - ue_penalty)

    def jitter_scale(self, bandwidth_mhz: float, active_ues: int = 1) -> float:
        """Variance inflation near the sampling ceiling.

        The paper notes "throughput variability increases with bandwidth,
        particularly in TDD mode"; overflow-recovery cycles make samples
        noisier when the SDR runs hot. The inflation saturates at
        :data:`JITTER_SCALE_CAP` — beyond a few dozen contending UEs the
        link is already overflow-bound and more contention shifts the mean
        (see :meth:`derate`) rather than widening the distribution.
        """
        needed = self.required_sample_rate_msps(bandwidth_mhz)
        if needed <= self.sustainable_rate_msps:
            return 1.0
        span = self.max_sample_rate_msps - self.sustainable_rate_msps
        overshoot = (needed - self.sustainable_rate_msps) / span if span > 0 else 1.0
        scale = 1.0 + 1.5 * overshoot + 0.5 * overshoot * (active_ues - 1)
        return min(scale, JITTER_SCALE_CAP)


#: The production cell's front end (also used for 4G at 20 MHz two-user,
#: where decoding two UEs' grants pushes it past the comfortable budget).
USRP_B210 = SdrFrontEnd(
    name="USRP B210",
    max_sample_rate_msps=61.44,
    sustainable_rate_msps=46.08,
)

#: Single-channel sibling used by the development network.
USRP_B200 = SdrFrontEnd(
    name="USRP B200",
    max_sample_rate_msps=61.44,
    sustainable_rate_msps=46.08,
)
