"""Physical-layer model: numerology, PRB grids, spectral efficiency.

The quantities here determine the deterministic part of uplink throughput:

    bits/s = PRBs x 12 subcarriers x 14 symbols/slot x slots/s
             x bits-per-RE(MCS) x (1 - overhead) x uplink fraction

which is exactly the budget that governs the paper's Figures 4-6 (throughput
vs. bandwidth, duplex mode and slicing ratio). Tables follow 3GPP TS 38.101
(5G NR transmission bandwidths) and TS 36.101 (LTE).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.radio.duplex import DuplexMode, TddPattern, FDD_FULL_UPLINK

#: Subcarriers per physical resource block (both LTE and NR).
SUBCARRIERS_PER_PRB = 12
#: OFDM symbols per slot with normal cyclic prefix.
SYMBOLS_PER_SLOT = 14


class Numerology(Enum):
    """Subcarrier spacing: mu=0 -> 15 kHz (LTE / NR FDD low band),
    mu=1 -> 30 kHz (typical NR TDD mid-band, e.g. n78)."""

    MU0_15KHZ = 0
    MU1_30KHZ = 1

    @property
    def subcarrier_spacing_hz(self) -> float:
        return 15_000.0 * (2 ** self.value)

    @property
    def slots_per_second(self) -> float:
        """Slot rate: 1 ms slots at 15 kHz, 0.5 ms slots at 30 kHz."""
        return 1000.0 * (2 ** self.value)


#: Max transmission-bandwidth configuration N_RB, (technology, mu, MHz) -> PRBs.
#: LTE per TS 36.101 Table 5.6-1; NR per TS 38.101-1 Table 5.3.2-1.
_PRB_TABLE: dict[tuple[str, int, int], int] = {
    # LTE, 15 kHz
    ("lte", 0, 5): 25,
    ("lte", 0, 10): 50,
    ("lte", 0, 15): 75,
    ("lte", 0, 20): 100,
    # NR FDD, 15 kHz
    ("nr", 0, 5): 25,
    ("nr", 0, 10): 52,
    ("nr", 0, 15): 79,
    ("nr", 0, 20): 106,
    ("nr", 0, 25): 133,
    ("nr", 0, 30): 160,
    ("nr", 0, 40): 216,
    ("nr", 0, 50): 270,
    # NR TDD mid-band, 30 kHz
    ("nr", 1, 5): 11,
    ("nr", 1, 10): 24,
    ("nr", 1, 15): 38,
    ("nr", 1, 20): 51,
    ("nr", 1, 25): 65,
    ("nr", 1, 30): 78,
    ("nr", 1, 40): 106,
    ("nr", 1, 50): 133,
    ("nr", 1, 60): 162,
    ("nr", 1, 80): 217,
    ("nr", 1, 100): 273,
}


def prb_count(technology: str, numerology: Numerology, bandwidth_mhz: float) -> int:
    """Number of usable physical resource blocks for a carrier.

    Parameters
    ----------
    technology:
        ``"lte"`` (4G) or ``"nr"`` (5G).
    numerology:
        Subcarrier spacing.
    bandwidth_mhz:
        Channel bandwidth in MHz; must be one of the standardized values.
    """
    tech = technology.lower()
    if tech not in ("lte", "nr"):
        raise ValueError(f"unknown technology {technology!r} (want 'lte' or 'nr')")
    key = (tech, numerology.value, int(bandwidth_mhz))
    try:
        return _PRB_TABLE[key]
    except KeyError:
        valid = sorted(
            mhz for (t, mu, mhz) in _PRB_TABLE if t == tech and mu == numerology.value
        )
        raise ValueError(
            f"no PRB configuration for {tech} mu={numerology.value} "
            f"{bandwidth_mhz} MHz; valid bandwidths: {valid}"
        ) from None


#: CQI-indexed spectral efficiency (bits per resource element), following the
#: 3GPP TS 38.214 Table 5.2.2.1-3 (256QAM) ladder, abridged to the entries the
#: channel model selects among.
_CQI_EFFICIENCY: dict[int, float] = {
    1: 0.1523,
    2: 0.3770,
    3: 0.8770,
    4: 1.4766,
    5: 1.9141,
    6: 2.4063,
    7: 2.7305,
    8: 3.3223,
    9: 3.9023,
    10: 4.5234,
    11: 5.1152,
    12: 5.5547,
    13: 6.2266,
    14: 6.9141,
    15: 7.4063,
}


def spectral_efficiency(cqi: int) -> float:
    """Bits per resource element for a channel-quality index (1..15)."""
    try:
        return _CQI_EFFICIENCY[int(cqi)]
    except KeyError:
        raise ValueError(f"CQI must be in 1..15, got {cqi}") from None


def re_rate(prbs: int, numerology: Numerology) -> float:
    """Resource elements per second offered by ``prbs`` resource blocks."""
    if prbs < 0:
        raise ValueError(f"negative PRB count: {prbs}")
    return prbs * SUBCARRIERS_PER_PRB * SYMBOLS_PER_SLOT * numerology.slots_per_second


@dataclass(frozen=True)
class CarrierConfig:
    """A configured carrier: technology + bandwidth + duplexing.

    Attributes
    ----------
    technology:
        ``"lte"`` or ``"nr"``.
    bandwidth_mhz:
        Channel bandwidth.
    duplex:
        FDD or TDD.
    tdd_pattern:
        Slot pattern when ``duplex`` is TDD; ignored for FDD.
    numerology:
        Subcarrier spacing; defaults follow the paper's deployments
        (LTE / NR FDD at 15 kHz, NR TDD at 30 kHz).
    control_overhead:
        Fraction of resource elements consumed by reference signals, PUCCH,
        PRACH and other non-data channels.
    """

    technology: str
    bandwidth_mhz: float
    duplex: DuplexMode
    tdd_pattern: TddPattern = FDD_FULL_UPLINK
    numerology: Numerology | None = None
    control_overhead: float = 0.14

    def __post_init__(self) -> None:
        if self.technology.lower() not in ("lte", "nr"):
            raise ValueError(f"unknown technology {self.technology!r}")
        if not 0.0 <= self.control_overhead < 1.0:
            raise ValueError(f"control_overhead out of range: {self.control_overhead}")
        if self.duplex is DuplexMode.TDD and self.technology.lower() == "lte":
            raise ValueError("the testbed's LTE network is FDD-only")
        if self.numerology is None:
            default = (
                Numerology.MU1_30KHZ
                if self.duplex is DuplexMode.TDD
                else Numerology.MU0_15KHZ
            )
            object.__setattr__(self, "numerology", default)
        # Validate the bandwidth eagerly so misconfiguration fails at build.
        prb_count(self.technology, self.numerology, self.bandwidth_mhz)

    @property
    def n_prbs(self) -> int:
        """Usable PRBs on this carrier."""
        assert self.numerology is not None
        return prb_count(self.technology, self.numerology, self.bandwidth_mhz)

    @property
    def uplink_fraction(self) -> float:
        """Fraction of slots available to uplink data."""
        if self.duplex is DuplexMode.FDD:
            return 1.0  # dedicated uplink carrier
        return self.tdd_pattern.uplink_fraction

    def uplink_phy_rate(self, cqi: int) -> float:
        """Ideal uplink PHY data rate (bits/s) at channel quality ``cqi``.

        This is the ceiling before SDR, modem and host constraints.
        """
        assert self.numerology is not None
        raw = re_rate(self.n_prbs, self.numerology) * spectral_efficiency(cqi)
        return raw * (1.0 - self.control_overhead) * self.uplink_fraction

    def uplink_rate_per_prb(self, cqi: int) -> float:
        """Uplink bits/s contributed by a single PRB at quality ``cqi``."""
        assert self.numerology is not None
        raw = re_rate(1, self.numerology) * spectral_efficiency(cqi)
        return raw * (1.0 - self.control_overhead) * self.uplink_fraction
