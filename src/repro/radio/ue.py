"""User equipment: host device + modem + SIM + channel, attached to a cell.

A UE mirrors the testbed units: "Raspberry Pi 4 units equipped with 5G USB
modems ... each runs a software agent called CSPOT" -- the CSPOT side is in
:mod:`repro.cspot`; here we model the radio half.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.radio.channel import ChannelModel
from repro.radio.core5g import PduSession
from repro.radio.devices import Device
from repro.radio.duplex import DuplexMode
from repro.radio.modems import Modem
from repro.radio.sim_cards import SimCard

_UNLIMITED = float("inf")


@dataclass
class UserEquipment:
    """A complete UE.

    Attributes
    ----------
    ue_id:
        Stable identifier (used by the MAC scheduler and in results).
    device:
        Host device model.
    modem:
        Cellular modem model.
    sim:
        Provisioned SIM card.
    channel:
        Per-UE channel statistics (placement/cable asymmetries go here).
    unit_cap_bps:
        Optional per-unit hard uplink cap for known-weak individual units
        (Fig. 6's "RPi1" saturates near 35 Mbps where its twin reaches 43).
    slice_name:
        Slice this UE's PDU session binds to, or None for the default.
    """

    ue_id: str
    device: Device
    modem: Modem
    sim: SimCard
    channel: ChannelModel = field(default_factory=ChannelModel)
    unit_cap_bps: Optional[float] = None
    slice_name: Optional[str] = None
    session: Optional[PduSession] = None

    def __post_init__(self) -> None:
        if self.unit_cap_bps is not None and self.unit_cap_bps <= 0:
            raise ValueError(f"unit_cap_bps must be positive: {self.unit_cap_bps}")

    def supports(self, technology: str, duplex: DuplexMode) -> bool:
        return self.modem.supports(technology, duplex)

    def combined_efficiency(self, technology: str, duplex: DuplexMode) -> float:
        """Modem x host efficiency on the granted PHY rate."""
        return self.modem.efficiency(technology, duplex) * self.device.efficiency(
            technology, duplex
        )

    def uplink_cap_bps(self, technology: str, duplex: DuplexMode) -> float:
        """Tightest of the modem, host, attachment and per-unit caps."""
        caps = (
            self.modem.uplink_cap_bps(technology, duplex),
            self.device.uplink_cap_bps(technology, duplex),
            self.device.attach_cap_bps(self.modem),
            self.unit_cap_bps if self.unit_cap_bps is not None else _UNLIMITED,
        )
        return min(caps)

    @property
    def attached(self) -> bool:
        return self.session is not None and self.session.active
