"""Duplexing modes and TDD slot patterns.

FDD dedicates a full carrier to uplink, so the uplink fraction is 1. TDD
time-shares one carrier between downlink (D), uplink (U) and special (S)
slots; the xGFabric testbed runs an uplink-heavy pattern because the sensor
workload is uplink-dominated. The uplink fraction is what makes 5G TDD need
40-50 MHz of bandwidth before it overtakes 5G FDD at 20 MHz in Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class DuplexMode(Enum):
    """Frequency-division vs. time-division duplexing."""

    FDD = "fdd"
    TDD = "tdd"


@dataclass(frozen=True)
class TddPattern:
    """A repeating TDD slot pattern.

    Attributes
    ----------
    pattern:
        String of slot types, e.g. ``"DDSUU"``; ``D`` = downlink,
        ``U`` = uplink, ``S`` = special (partially usable for uplink).
    special_uplink_share:
        Fraction of a special slot's symbols usable for uplink data
        (the rest is guard period + downlink pilot).
    """

    pattern: str
    special_uplink_share: float = 0.25

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("empty TDD pattern")
        bad = set(self.pattern.upper()) - set("DUS")
        if bad:
            raise ValueError(f"invalid slot types in TDD pattern: {sorted(bad)}")
        if not 0.0 <= self.special_uplink_share <= 1.0:
            raise ValueError(
                f"special_uplink_share out of [0,1]: {self.special_uplink_share}"
            )
        object.__setattr__(self, "pattern", self.pattern.upper())

    @property
    def uplink_fraction(self) -> float:
        """Fraction of slot capacity available for uplink data."""
        total = len(self.pattern)
        ul = self.pattern.count("U") + self.special_uplink_share * self.pattern.count("S")
        return ul / total

    @property
    def downlink_fraction(self) -> float:
        total = len(self.pattern)
        dl = self.pattern.count("D") + (1.0 - self.special_uplink_share) * 0.5 * self.pattern.count("S")
        return dl / total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.pattern


#: Placeholder pattern used by FDD carriers (uplink_fraction == 1 by mode).
FDD_FULL_UPLINK = TddPattern("U")

#: The uplink-heavy pattern used by the testbed's 5G TDD cell. Two uplink
#: slots plus a quarter of the special slot out of five -> 45 % uplink.
TDD_UL_HEAVY = TddPattern("DDSUU", special_uplink_share=0.25)

#: A conventional downlink-heavy eMBB pattern, for comparison experiments.
TDD_DL_HEAVY = TddPattern("DDDSU", special_uplink_share=0.25)
