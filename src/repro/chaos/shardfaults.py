"""Chaos campaigns over a *sharded* fabric: declarative, cell-routed.

The engine-attached injectors in :mod:`repro.chaos.faults` mutate one
live fabric; a sharded run has no single fabric object to mutate, so its
chaos surface is declarative instead: a :class:`ShardChaosCampaign` is a
set of :class:`~repro.parallel.plan.CellFault` (sensor derates) and
:class:`~repro.parallel.plan.LinkFault` (cross-shard CSPOT link
severances) that the coordinator routes to the workers owning the
faulted cells (:meth:`~repro.parallel.plan.ShardPlan.route_by_cell`).

Because every fault is keyed by ``(cell, window)`` -- never by worker --
a campaign's effect is worker-count-invariant by construction: severing
the link of a site that sits on a shard boundary produces the exact same
parked/flushed/in-flight ledger whether the site shares a worker with
the hub or not. The determinism battery in
``tests/parallel/test_fabric_sharded_determinism.py`` pins this.

A disabled campaign routes nothing at all (the bit-identical guarantee
mirroring :class:`~repro.chaos.campaign.ChaosCampaign`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.plan import CellFault, LinkFault, ShardPlan


@dataclass(frozen=True)
class ShardChaosCampaign:
    """Declarative faults for one sharded fabric run.

    Parameters
    ----------
    faults:
        Sensor-derate faults, each applied by the owning worker to the
        cell's own sample block.
    link_faults:
        Link severances, each applied by the worker owning the *sender*
        cell: transfers park locally while severed and flush in order at
        the first healthy window.
    enabled:
        When False the campaign routes nothing -- the run is
        bit-identical to an un-attacked one.
    """

    faults: tuple[CellFault, ...] = ()
    link_faults: tuple[LinkFault, ...] = ()
    enabled: bool = True

    @classmethod
    def severed_link(
        cls, cell_index: int, start_window: int, end_window: int
    ) -> "ShardChaosCampaign":
        """The canonical single-fault campaign: one site loses its uplink."""
        return cls(
            link_faults=(LinkFault(cell_index, start_window, end_window),)
        )

    @classmethod
    def randomized(
        cls,
        rng: np.random.Generator,
        n_cells: int,
        n_windows: int,
        n_derates: int = 2,
        n_severances: int = 1,
        max_outage_windows: int = 3,
    ) -> "ShardChaosCampaign":
        """Draw a reproducible campaign from a caller-provided stream.

        The generator is passed in (never constructed here -- REPRO201)
        so campaigns drawn from an engine's named ``"chaos"`` stream are
        a function of the master seed alone. Windows are drawn so every
        severance both starts and ends inside the run.
        """
        if n_cells < 1:
            raise ValueError(f"n_cells must be >= 1: {n_cells}")
        if n_windows < 1:
            raise ValueError(f"n_windows must be >= 1: {n_windows}")
        if max_outage_windows < 1:
            raise ValueError(
                f"max_outage_windows must be >= 1: {max_outage_windows}"
            )
        faults = tuple(
            CellFault(
                cell_index=int(rng.integers(0, n_cells)),
                window=int(rng.integers(0, n_windows)),
                derate=float(rng.uniform(0.2, 0.8)),
            )
            for _ in range(n_derates)
        )
        link_faults = []
        for _ in range(n_severances):
            start = int(rng.integers(0, n_windows))
            length = int(rng.integers(1, max_outage_windows + 1))
            end = min(start + length - 1, n_windows - 1)
            link_faults.append(
                LinkFault(
                    cell_index=int(rng.integers(0, n_cells)),
                    start_window=start,
                    end_window=end,
                )
            )
        return cls(faults=faults, link_faults=tuple(link_faults))

    def routed(
        self, plan: ShardPlan
    ) -> tuple[
        tuple[tuple[CellFault, ...], ...], tuple[tuple[LinkFault, ...], ...]
    ]:
        """Per-worker (faults, link_faults), routed by owning cell.

        A disabled campaign routes empty tuples everywhere. Routing is
        total: every enabled fault lands on exactly one worker.
        """
        if not self.enabled:
            empty = tuple(() for _ in range(plan.n_workers))
            return empty, empty
        return (
            plan.route_faults(self.faults),
            plan.route_link_faults(self.link_faults),
        )

    @property
    def n_faults(self) -> int:
        """Total faults the campaign will route when enabled."""
        return len(self.faults) + len(self.link_faults)
