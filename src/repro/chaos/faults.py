"""Cross-layer fault injectors.

Each injector is one schedulable fault: the campaign runner calls
:meth:`~FaultInjection.inject` at ``start_s``, :meth:`~FaultInjection.revert`
after ``duration_s``, then polls :meth:`~FaultInjection.recovered` until the
layer is observably healthy again. Injectors mutate the fabric through its
public layer APIs only (partition schedules, node power switches, UE
detach/recover, cluster node failure), so the faults exercise exactly the
recovery paths a real deployment has.

Injector instances carry per-run state (saved channel models, progress
snapshots) -- build a fresh list per campaign run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fabric import XGFabric
    from repro.cspot.node import CSPOTNode


@dataclass
class FaultInjection:
    """Base fault: a named, scheduled injection on one layer.

    Attributes
    ----------
    start_s / duration_s:
        When the fault begins and how long its cause persists. A zero
        duration is an instantaneous fault (e.g. a session drop) whose
        whole story is the recovery.
    recovery_poll_s / recovery_timeout_s:
        Health-check cadence and give-up horizon after revert.
    """

    start_s: float
    duration_s: float = 0.0
    name: str = ""
    layer: str = "generic"
    recovery_poll_s: float = 30.0
    recovery_timeout_s: float = 4 * 3600.0

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s < 0:
            raise ValueError(
                f"fault schedule must be non-negative: "
                f"start={self.start_s}, duration={self.duration_s}"
            )
        if not self.name:
            self.name = f"{self.layer}@{self.start_s:.0f}s"

    def inject(self, fabric: "XGFabric") -> None:
        raise NotImplementedError

    def revert(self, fabric: "XGFabric") -> None:
        """Remove the fault's cause. Default: nothing to undo."""

    def recovered(self, fabric: "XGFabric") -> bool:
        """Is the layer observably healthy again? Default: yes at revert."""
        return True

    # -- shared progress probes ------------------------------------------------

    def _snapshot_telemetry(self, fabric: "XGFabric") -> None:
        self._telemetry_mark = fabric.metrics.telemetry_sent

    def _telemetry_progressed(self, fabric: "XGFabric") -> bool:
        return fabric.metrics.telemetry_sent > getattr(
            self, "_telemetry_mark", 0
        )


@dataclass
class CspotPartitionInjector(FaultInjection):
    """Partition a CSPOT network path for the fault window."""

    src: str = "unl"
    dst: str = "ucsb"
    layer: str = "cspot"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("a partition needs a positive duration")
        if not self.name:
            self.name = f"partition:{self.src}-{self.dst}@{self.start_s:.0f}s"
        super().__post_init__()

    def inject(self, fabric: "XGFabric") -> None:
        path = fabric.transport.path(self.src, self.dst)
        path.faults.add_outage(fabric.engine.now, self.duration_s)

    def revert(self, fabric: "XGFabric") -> None:
        # The window expires on its own; recovery is observed, not forced.
        self._snapshot_telemetry(fabric)

    def recovered(self, fabric: "XGFabric") -> bool:
        if "unl" in (self.src, self.dst):
            # Telemetry rides this path: healthy means new records land.
            return self._telemetry_progressed(fabric)
        return True


@dataclass
class CspotAckLossInjector(FaultInjection):
    """Raise i.i.d. ack loss on a path for the fault window."""

    src: str = "unl"
    dst: str = "ucsb"
    ack_loss_prob: float = 0.3
    layer: str = "cspot"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("ack loss needs a positive duration")
        if not self.name:
            self.name = f"ack-loss:{self.src}-{self.dst}@{self.start_s:.0f}s"
        super().__post_init__()

    def inject(self, fabric: "XGFabric") -> None:
        faults = fabric.transport.path(self.src, self.dst).faults
        self._saved_prob = faults.ack_loss_prob
        faults.ack_loss_prob = self.ack_loss_prob

    def revert(self, fabric: "XGFabric") -> None:
        fabric.transport.path(self.src, self.dst).faults.ack_loss_prob = (
            self._saved_prob
        )


@dataclass
class NodePowerLossInjector(FaultInjection):
    """Power-cycle a CSPOT node; storage survives, in-flight work dies."""

    node: str = "ucsb"
    layer: str = "cspot"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("a power loss needs a positive duration")
        if not self.name:
            self.name = f"power-loss:{self.node}@{self.start_s:.0f}s"
        super().__post_init__()

    def _target(self, fabric: "XGFabric") -> "CSPOTNode":
        try:
            return {"unl": fabric.unl, "ucsb": fabric.ucsb, "nd": fabric.nd}[
                self.node
            ]
        except KeyError:
            raise ValueError(f"unknown CSPOT node {self.node!r}") from None

    def inject(self, fabric: "XGFabric") -> None:
        self._target(fabric).power_off()

    def revert(self, fabric: "XGFabric") -> None:
        self._target(fabric).power_on()
        self._snapshot_telemetry(fabric)

    def recovered(self, fabric: "XGFabric") -> bool:
        node = self._target(fabric)
        if not node.alive:
            return False
        if self.node in ("unl", "ucsb"):
            return self._telemetry_progressed(fabric)
        return True


@dataclass
class RadioFadeInjector(FaultInjection):
    """Fade the gateway UE's channel (CQI drop + widened fast fading)."""

    cqi_drop: float = 4.0
    fading_scale: float = 2.0
    layer: str = "radio"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("a fade needs a positive duration")
        if not self.name:
            self.name = f"link-fade@{self.start_s:.0f}s"
        super().__post_init__()
        self._saved = None

    def inject(self, fabric: "XGFabric") -> None:
        ue = fabric._ue
        if ue is None:
            return  # radio-free configuration: nothing to fade
        self._saved = ue.channel
        ue.channel = ue.channel.degraded(self.cqi_drop, self.fading_scale)

    def revert(self, fabric: "XGFabric") -> None:
        if self._saved is not None:
            fabric._ue.channel = self._saved


@dataclass
class UePowerLossInjector(FaultInjection):
    """The gateway UE loses power: radio detach + the 5G leg goes dark.

    The UNL-UCSB path carries telemetry through this UE, so the injector
    partitions it for the window; on revert the UE walks the full
    re-attach pipeline (re-register, fresh PDU session, radio attach).
    """

    layer: str = "radio"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("a UE power loss needs a positive duration")
        if not self.name:
            self.name = f"ue-power-loss@{self.start_s:.0f}s"
        super().__post_init__()

    def inject(self, fabric: "XGFabric") -> None:
        if fabric.radio is not None and fabric._ue is not None:
            fabric.radio.detach_ue(fabric._ue)
        fabric.transport.path("unl", "ucsb").faults.add_outage(
            fabric.engine.now, self.duration_s
        )

    def revert(self, fabric: "XGFabric") -> None:
        if fabric.radio is not None and fabric._ue is not None:
            fabric.radio.recover_ue(fabric._ue)
        self._snapshot_telemetry(fabric)

    def recovered(self, fabric: "XGFabric") -> bool:
        if fabric._ue is not None and not fabric._ue.attached:
            return False
        return self._telemetry_progressed(fabric)


@dataclass
class PduSessionDropInjector(FaultInjection):
    """The core drops the UE's registration and PDU session mid-run.

    An instantaneous control-plane fault: the user plane rejects traffic
    until the UE re-registers (idempotent) and opens a fresh session.
    """

    layer: str = "core5g"

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"pdu-session-drop@{self.start_s:.0f}s"
        super().__post_init__()

    def inject(self, fabric: "XGFabric") -> None:
        if fabric.radio is None or fabric._ue is None:
            return
        imsi = fabric._ue.sim.imsi
        if fabric.radio.core.is_registered(imsi):
            fabric.radio.core.deregister(imsi)

    def revert(self, fabric: "XGFabric") -> None:
        if fabric.radio is not None and fabric._ue is not None:
            fabric.radio.recover_ue(fabric._ue)

    def recovered(self, fabric: "XGFabric") -> bool:
        return fabric._ue is None or fabric._ue.attached


@dataclass
class HpcNodeFailureInjector(FaultInjection):
    """``n_nodes`` cluster nodes crash; jobs that no longer fit die."""

    n_nodes: int = 1
    layer: str = "hpc"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("a node failure needs a positive repair window")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1: {self.n_nodes}")
        if not self.name:
            self.name = f"hpc-node-failure:{self.n_nodes}@{self.start_s:.0f}s"
        super().__post_init__()
        self.killed_jobs: list[str] = []
        self._failed_n = 0

    def inject(self, fabric: "XGFabric") -> None:
        cluster = fabric.site.cluster
        # Concurrent failures stack; at least one node must survive.
        self._failed_n = min(self.n_nodes, cluster.total_nodes - 1)
        if self._failed_n <= 0:
            return
        killed = cluster.fail_nodes(self._failed_n)
        self.killed_jobs = sorted(j.name for j in killed)

    def revert(self, fabric: "XGFabric") -> None:
        if self._failed_n > 0:
            fabric.site.cluster.restore_nodes(self._failed_n)

    def recovered(self, fabric: "XGFabric") -> bool:
        # Healthy means the pilot layer has capacity on offer again.
        fabric.controller.retire_finished()
        return fabric.controller.nodes_available() > 0


@dataclass
class PilotPreemptionInjector(FaultInjection):
    """Preempt the most capable live pilot (its placeholder job is killed)."""

    layer: str = "pilot"

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"pilot-preemption@{self.start_s:.0f}s"
        super().__post_init__()
        self.preempted: Optional[str] = None

    def inject(self, fabric: "XGFabric") -> None:
        from repro.pilot.pilot import PilotState

        live = [
            p
            for p in fabric.controller.pilots
            if p.state in (PilotState.SUBMITTED, PilotState.ACTIVE)
        ]
        if not live:
            return
        victim = max(live, key=lambda p: (p.nodes, p.submit_time or 0.0))
        self.preempted = victim.name
        if victim.job is not None and not victim.job.is_terminal:
            fabric.site.cluster.fail(victim.job)

    def recovered(self, fabric: "XGFabric") -> bool:
        if self.preempted is None:
            return True
        fabric.controller.retire_finished()
        return fabric.controller.nodes_available() > 0


@dataclass
class QueueStormInjector(FaultInjection):
    """Burst-submit background jobs, deepening the batch queue."""

    n_jobs: int = 8
    nodes_per_job: int = 2
    job_runtime_s: float = 1800.0
    layer: str = "hpc"

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1: {self.n_jobs}")
        if not self.name:
            self.name = f"queue-storm:{self.n_jobs}@{self.start_s:.0f}s"
        super().__post_init__()
        self.submitted: list[str] = []

    def inject(self, fabric: "XGFabric") -> None:
        from repro.hpc.job import Job

        cluster = fabric.site.cluster
        nodes = min(self.nodes_per_job, cluster.total_nodes)
        for i in range(self.n_jobs):
            job = Job(
                name=f"storm-{int(self.start_s)}-{i}",
                nodes=nodes,
                walltime_s=self.job_runtime_s * 1.25,
                runtime_s=self.job_runtime_s,
                user="chaos-storm",
            )
            cluster.submit(job)
            self.submitted.append(job.name)

    def recovered(self, fabric: "XGFabric") -> bool:
        # The storm has passed when none of its jobs still occupy the queue.
        cluster = fabric.site.cluster
        names = set(self.submitted)
        live = [
            j
            for j in cluster.pending_jobs + cluster.running_jobs
            if j.name in names
        ]
        return not live
