"""Cross-layer fault injection and resilience measurement.

The paper's delay-tolerance claim (sections 3.1 and 4.2) is qualitative:
CSPOT's persistent logs plus retried appends survive "frequent network
interruption". This package makes it a measured, regression-gated
property. It provides:

- :mod:`~repro.chaos.policies` -- explicit retry/timeout/backoff policies
  the fabric threads through every layer that retries.
- :mod:`~repro.chaos.faults` -- schedulable injectors for every layer:
  radio fades and UE power loss, 5G core session drops, CSPOT partitions /
  ack loss / node power loss, HPC node failures / preemption / queue
  storms.
- :mod:`~repro.chaos.campaign` -- the seeded campaign runner; a disabled
  campaign arms nothing and leaves the run bit-identical.
- :mod:`~repro.chaos.report` -- :class:`ResilienceReport` with per-fault
  recovery times, duplicate/lost record counts, and the exactly-once
  verdict, all derived from the simulated logs.
"""

from repro.chaos.campaign import (
    ChaosCampaign,
    randomized_campaign,
    run_campaign,
    standard_campaign,
)
from repro.chaos.faults import (
    CspotAckLossInjector,
    CspotPartitionInjector,
    FaultInjection,
    HpcNodeFailureInjector,
    NodePowerLossInjector,
    PduSessionDropInjector,
    PilotPreemptionInjector,
    QueueStormInjector,
    RadioFadeInjector,
    UePowerLossInjector,
)
from repro.chaos.policies import (
    DEFAULT_APPEND_POLICY,
    DEFAULT_FETCH_POLICY,
    DEFAULT_PILOT_POLICY,
    RESILIENT_POLICIES,
    FabricPolicies,
    RetryPolicy,
)
from repro.chaos.report import (
    DeliveryAudit,
    FaultOutcome,
    ResilienceReport,
    audit_delivery,
    build_report,
    masked_downtime_s,
)
from repro.chaos.shardfaults import ShardChaosCampaign

__all__ = [
    "ChaosCampaign",
    "CspotAckLossInjector",
    "CspotPartitionInjector",
    "DEFAULT_APPEND_POLICY",
    "DEFAULT_FETCH_POLICY",
    "DEFAULT_PILOT_POLICY",
    "DeliveryAudit",
    "FabricPolicies",
    "FaultInjection",
    "FaultOutcome",
    "HpcNodeFailureInjector",
    "NodePowerLossInjector",
    "PduSessionDropInjector",
    "PilotPreemptionInjector",
    "QueueStormInjector",
    "RESILIENT_POLICIES",
    "RadioFadeInjector",
    "ResilienceReport",
    "RetryPolicy",
    "ShardChaosCampaign",
    "UePowerLossInjector",
    "audit_delivery",
    "build_report",
    "masked_downtime_s",
    "randomized_campaign",
    "run_campaign",
    "standard_campaign",
]
