"""Resilience accounting: per-fault recovery and exactly-once auditing.

A chaos campaign ends with a :class:`ResilienceReport` -- the measured form
of the paper's delay-tolerance claim. Every number is derived from the
simulated run (fault outcomes from the campaign runner, delivery counts
from the CSPOT logs themselves), so two same-seed campaigns serialize to
byte-identical reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.core.telemetry import TelemetryRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fabric import XGFabric


@dataclass
class FaultOutcome:
    """What happened to one injected fault.

    Attributes
    ----------
    name / layer:
        Identity of the injection (layer is one of ``radio``, ``core5g``,
        ``cspot``, ``hpc``, ``pilot``).
    injected_at_s / reverted_at_s:
        When the fault started and when its cause was removed (equal for
        instantaneous faults like a PDU-session drop).
    recovered_at_s:
        When the system was observed healthy again, or None if it never
        was before the run (or the recovery timeout) ended.
    detail:
        Injector-specific note (victims killed, windows scheduled...).
    recorder_dump:
        The :class:`~repro.obs.recorder.FlightRecorder` snapshot taken at
        injection time (``RecorderDump.to_dict()``), when the fabric has a
        recorder wired; the local trace context the incident happened in.
    """

    name: str
    layer: str
    injected_at_s: float
    reverted_at_s: float
    recovered_at_s: Optional[float] = None
    detail: str = ""
    recorder_dump: Optional[dict[str, Any]] = None

    @property
    def recovered(self) -> bool:
        return self.recovered_at_s is not None

    @property
    def recovery_s(self) -> Optional[float]:
        """Time from injection to observed health, or None."""
        if self.recovered_at_s is None:
            return None
        return self.recovered_at_s - self.injected_at_s

    def to_dict(self) -> dict[str, Any]:
        out = {
            "name": self.name,
            "layer": self.layer,
            "injected_at_s": self.injected_at_s,
            "reverted_at_s": self.reverted_at_s,
            "recovered_at_s": self.recovered_at_s,
            "recovery_s": self.recovery_s,
            "detail": self.detail,
        }
        if self.recorder_dump is not None:
            out["recorder_dump"] = self.recorder_dump
        return out


@dataclass
class DeliveryAudit:
    """Exactly-once verdict, computed from the logs, not the claim.

    ``unique_delivered`` counts distinct (station, timestamp) records in
    the UCSB telemetry logs; ``duplicates`` is everything beyond that;
    ``lost`` is how many *completed* sends never show up. A send still in
    flight at run end (committed server-side but unacknowledged) is not a
    completion and cannot be counted lost.
    """

    completed_sends: int = 0
    records_in_log: int = 0
    unique_delivered: int = 0
    duplicates: int = 0
    lost: int = 0
    per_station: dict[str, int] = field(default_factory=dict)

    @property
    def exactly_once(self) -> bool:
        return self.lost == 0 and self.duplicates == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "completed_sends": self.completed_sends,
            "records_in_log": self.records_in_log,
            "unique_delivered": self.unique_delivered,
            "duplicates": self.duplicates,
            "lost": self.lost,
            "exactly_once": self.exactly_once,
            "per_station": dict(sorted(self.per_station.items())),
        }


def audit_delivery(fabric: "XGFabric") -> DeliveryAudit:
    """Audit the telemetry logs at UCSB against the fabric's send count."""
    audit = DeliveryAudit(completed_sends=fabric.metrics.telemetry_sent)
    unique_total = 0
    for station in fabric.stations:
        log = fabric.ucsb.get_log(f"telemetry.{station.station_id}")
        seen: set[tuple[str, float]] = set()
        entries = 0
        for entry in log.scan():
            rec = TelemetryRecord.from_bytes(entry.payload)
            seen.add((rec.station_id, rec.time_s))
            entries += 1
        audit.records_in_log += entries
        audit.duplicates += entries - len(seen)
        unique_total += len(seen)
        audit.per_station[station.station_id] = entries
    audit.unique_delivered = unique_total
    audit.lost = max(0, audit.completed_sends - unique_total)
    return audit


@dataclass
class ResilienceReport:
    """The campaign's deliverable: recovery per fault + delivery verdict.

    ``downtime_masked_s`` measures how much injected HPC downtime the
    pilot layer hid from the application: the summed duration of HPC-layer
    fault windows that overlap at least one *completed* CFD run.
    """

    seed: int
    duration_s: float
    faults: list[FaultOutcome] = field(default_factory=list)
    delivery: DeliveryAudit = field(default_factory=DeliveryAudit)
    cfd_runs: int = 0
    cfd_failures: int = 0
    change_alerts: int = 0
    downtime_masked_s: float = 0.0

    @property
    def exactly_once(self) -> bool:
        return self.delivery.exactly_once

    @property
    def all_recovered(self) -> bool:
        return all(f.recovered for f in self.faults)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "faults": [f.to_dict() for f in self.faults],
            "delivery": self.delivery.to_dict(),
            "cfd_runs": self.cfd_runs,
            "cfd_failures": self.cfd_failures,
            "change_alerts": self.change_alerts,
            "downtime_masked_s": self.downtime_masked_s,
            "exactly_once": self.exactly_once,
            "all_recovered": self.all_recovered,
        }

    def to_json(self) -> str:
        """Deterministic serialization (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def masked_downtime_s(fabric: "XGFabric", faults: list[FaultOutcome]) -> float:
    """Summed HPC fault-window time overlapped by a completed CFD run."""
    masked = 0.0
    for fault in faults:
        if fault.layer != "hpc":
            continue
        start, end = fault.injected_at_s, fault.reverted_at_s
        if end <= start:
            continue
        for run in fabric.metrics.cfd_runs:
            run_start = run.trigger_time_s
            run_end = run.trigger_time_s + run.total_response_s
            if run_start < end and start < run_end:
                masked += end - start
                break
    return masked


def build_report(
    fabric: "XGFabric",
    duration_s: float,
    faults: list[FaultOutcome],
) -> ResilienceReport:
    """Assemble the full report for a finished run."""
    return ResilienceReport(
        seed=fabric.config.seed,
        duration_s=duration_s,
        faults=list(faults),
        delivery=audit_delivery(fabric),
        cfd_runs=len(fabric.metrics.cfd_runs),
        cfd_failures=fabric.metrics.cfd_failures,
        change_alerts=fabric.metrics.change_alerts,
        downtime_masked_s=masked_downtime_s(fabric, faults),
    )
