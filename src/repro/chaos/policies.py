"""Retry / timeout / backoff policies for degraded-mode operation.

The paper's delay-tolerance discipline is "a 'failure to append' ... is
simply retried until it succeeds" (section 4.2). This module makes that
discipline an explicit, tunable object instead of constants scattered
through the stack: every layer that retries (CSPOT reliable appends, the
ND alert fetch, pilot acquisition for CFD triggers) is parameterized by a
:class:`RetryPolicy`, and :class:`FabricPolicies` bundles the per-layer
policies the fabric threads through its loops.

Policies are pure data + arithmetic -- no engine, no randomness -- so the
same policy object can drive simulated retries and be printed into a
:class:`~repro.chaos.report.ResilienceReport` verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff over a bounded number of attempts.

    Attributes
    ----------
    max_attempts:
        Total tries (first attempt included). ``1`` means no retry.
    backoff_s:
        Base delay before the second attempt; ``0`` retries immediately.
    backoff_factor:
        Multiplier applied per subsequent attempt (``2`` = doubling).
    max_backoff_s:
        Ceiling on any single delay -- long partitions are waited out at
        this cadence rather than hammered or abandoned.
    """

    max_attempts: int = 100
    backoff_s: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"negative backoff: {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if self.max_backoff_s < self.backoff_s:
            raise ValueError("max_backoff_s must be >= backoff_s")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (0-based).

        The exponent is clamped so huge attempt numbers cannot overflow;
        the result is capped at ``max_backoff_s``.
        """
        if attempt < 0:
            raise ValueError(f"negative attempt index: {attempt}")
        if self.backoff_s == 0.0:
            return 0.0
        return min(
            self.backoff_s * (self.backoff_factor ** min(attempt, 12)),
            self.max_backoff_s,
        )

    def total_budget_s(self) -> float:
        """Sum of all backoff delays if every attempt fails (the worst-case
        time a caller spends waiting between attempts)."""
        return sum(self.delay_s(a) for a in range(self.max_attempts - 1))


#: The transport's historical constants (RemoteAppendClient defaults) --
#: the fabric's append behaviour is bit-identical under this policy.
DEFAULT_APPEND_POLICY = RetryPolicy(
    max_attempts=100, backoff_s=0.5, backoff_factor=2.0, max_backoff_s=60.0
)

#: Alert fetches run on a 30-minute duty cycle; a failed fetch retries on
#: a short backoff and, if the partition outlasts the budget, gives up and
#: lets the *next* duty cycle pick up the parked alerts (CSPOT logs hold
#: them -- delay, not loss).
DEFAULT_FETCH_POLICY = RetryPolicy(
    max_attempts=8, backoff_s=5.0, backoff_factor=2.0, max_backoff_s=120.0
)

#: Pilot acquisition for one CFD trigger: a pilot can expire or die
#: between selection and execution; each attempt acquires a fresh pilot.
DEFAULT_PILOT_POLICY = RetryPolicy(
    max_attempts=3, backoff_s=0.0, backoff_factor=1.0, max_backoff_s=0.0
)


@dataclass(frozen=True)
class FabricPolicies:
    """The per-layer retry policies the fabric threads through its loops.

    Defaults reproduce the pre-chaos constants exactly, so a fabric built
    with ``FabricPolicies()`` is bit-identical to one built before this
    module existed (the no-drift guarantee the chaos determinism tests
    pin down).

    Attributes
    ----------
    append:
        Telemetry / summary / operator-inbox reliable appends.
    fetch:
        The ND alert-log fetch (section 3.1's "data parked in logs ...
        fetched once the nodes become active").
    pilot:
        Pilot acquisition attempts per CFD trigger.
    pilot_watchdog_s:
        When positive, the fabric runs a watchdog that re-bootstraps a
        pilot whenever none is submitted or active (recovery from HPC
        node failures killing every pilot). ``0`` disables the watchdog
        (the pre-chaos behaviour: pilots are only submitted on data).
    """

    append: RetryPolicy = field(default_factory=lambda: DEFAULT_APPEND_POLICY)
    fetch: RetryPolicy = field(default_factory=lambda: DEFAULT_FETCH_POLICY)
    pilot: RetryPolicy = field(default_factory=lambda: DEFAULT_PILOT_POLICY)
    pilot_watchdog_s: float = 0.0

    def __post_init__(self) -> None:
        if self.pilot_watchdog_s < 0:
            raise ValueError(
                f"negative watchdog interval: {self.pilot_watchdog_s}"
            )


#: Policies for chaos campaigns: same retry discipline, plus the pilot
#: watchdog so HPC faults that kill every pilot are repaired without
#: waiting for the next data-driven submission.
RESILIENT_POLICIES = FabricPolicies(pilot_watchdog_s=600.0)
