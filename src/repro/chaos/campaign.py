"""Campaign runner: seeded, schedulable fault campaigns over a fabric run.

A :class:`ChaosCampaign` owns a list of :class:`~repro.chaos.faults
.FaultInjection`\\ s and arms one engine process per fault when attached to
a fabric. A campaign with no faults (or ``enabled=False``) arms nothing at
all -- it adds zero events, zero RNG draws, zero behavioural drift, which
is the bit-identical guarantee the determinism tests pin down.

Fault timing can be randomized *reproducibly* through the engine's named
``"chaos"`` RNG stream (:func:`randomized_campaign`): the stream is keyed
by name, so chaos draws never perturb the sensor, transport, or scheduler
streams, and two same-seed campaigns land faults at identical times.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Iterable, Optional, Sequence

from repro.chaos.faults import (
    CspotPartitionInjector,
    FaultInjection,
    HpcNodeFailureInjector,
    UePowerLossInjector,
)
from repro.chaos.report import FaultOutcome, ResilienceReport, build_report
from repro.simkernel.streams import CHAOS_CAMPAIGN

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fabric import XGFabric
    from repro.simkernel.events import Event


class ChaosCampaign:
    """A set of scheduled faults to drive against one fabric run.

    Parameters
    ----------
    faults:
        The injections, in any order (each is independently scheduled).
    enabled:
        When False the campaign attaches as a no-op: no processes are
        armed and the run is bit-identical to an un-attacked one.
    """

    def __init__(
        self,
        faults: Iterable[FaultInjection] = (),
        enabled: bool = True,
    ) -> None:
        self.faults = list(faults)
        self.enabled = enabled
        self.outcomes: list[FaultOutcome] = []
        self._fabric: Optional["XGFabric"] = None

    def attach(self, fabric: "XGFabric") -> "ChaosCampaign":
        """Arm one runner process per fault on the fabric's engine.

        Disabled or empty campaigns arm nothing -- the event stream is
        untouched.
        """
        if self._fabric is not None:
            raise RuntimeError("campaign is already attached")
        self._fabric = fabric
        if not self.enabled:
            return self
        for fault in self.faults:
            fabric.engine.process(
                self._drive(fabric, fault), name=f"chaos:{fault.name}"
            )
        return self

    def _drive(
        self, fabric: "XGFabric", fault: FaultInjection
    ) -> Generator["Event", Any, None]:
        engine = fabric.engine
        yield engine.timeout(fault.start_s)
        injected_at = engine.now
        fault.inject(fabric)
        dump = self._snapshot(fabric, fault)
        if fault.duration_s > 0:
            yield engine.timeout(fault.duration_s)
        fault.revert(fabric)
        reverted_at = engine.now
        outcome = FaultOutcome(
            name=fault.name,
            layer=fault.layer,
            injected_at_s=injected_at,
            reverted_at_s=reverted_at,
            detail=self._detail(fault),
            recorder_dump=dump,
        )
        self.outcomes.append(outcome)
        deadline = engine.now + fault.recovery_timeout_s
        while True:
            if fault.recovered(fabric):
                outcome.recovered_at_s = engine.now
                break
            if engine.now >= deadline:
                break
            yield engine.timeout(fault.recovery_poll_s)
        self._observe(fabric, outcome)

    @staticmethod
    def _snapshot(
        fabric: "XGFabric", fault: FaultInjection
    ) -> Optional[dict[str, Any]]:
        """Freeze the fabric's flight recorder at injection time, if wired.

        The dump captures the span/metric context the fault landed in; it
        rides the :class:`FaultOutcome` into the resilience report.
        """
        recorder = getattr(fabric, "recorder", None)
        if recorder is None:
            return None
        return recorder.snapshot(trigger=f"chaos:{fault.name}").to_dict()

    @staticmethod
    def _detail(fault: FaultInjection) -> str:
        killed = getattr(fault, "killed_jobs", None)
        if killed:
            return f"killed: {', '.join(killed)}"
        preempted = getattr(fault, "preempted", None)
        if preempted:
            return f"preempted: {preempted}"
        submitted = getattr(fault, "submitted", None)
        if submitted:
            return f"submitted {len(submitted)} storm jobs"
        return ""

    @staticmethod
    def _observe(fabric: "XGFabric", outcome: FaultOutcome) -> None:
        """Record the fault's story through the observability seams."""
        tr = fabric.tracer
        if not tr.enabled:
            return
        tr.record(
            "chaos.fault",
            outcome.injected_at_s,
            outcome.reverted_at_s,
            category="chaos",
            attrs={"name": outcome.name, "layer": outcome.layer},
        )
        tr.metrics.counter(
            "chaos.faults", help="injected faults"
        ).inc(layer=outcome.layer, recovered=str(outcome.recovered).lower())
        if outcome.recovery_s is not None:
            tr.metrics.histogram(
                "chaos.recovery_s", help="fault recovery time (sim)"
            ).observe(outcome.recovery_s, layer=outcome.layer)

    def report(self, duration_s: float) -> ResilienceReport:
        """Build the resilience report for the finished run."""
        if self._fabric is None:
            raise RuntimeError("campaign was never attached to a fabric")
        outcomes = sorted(
            self.outcomes, key=lambda o: (o.injected_at_s, o.name)
        )
        return build_report(self._fabric, duration_s, outcomes)


def run_campaign(
    fabric: "XGFabric", campaign: ChaosCampaign, duration_s: float
) -> ResilienceReport:
    """Attach, run, and report in one call."""
    campaign.attach(fabric)
    fabric.run(duration_s)
    return campaign.report(duration_s)


def standard_campaign(duration_s: float) -> ChaosCampaign:
    """The reference cross-layer campaign: a mid-run CSPOT partition, a UE
    power loss, and an HPC node failure, spread over the run.

    This is the acceptance scenario: the pipeline must come out of it with
    zero lost and zero duplicate sensor records and a recovery time for
    every fault.
    """
    if duration_s < 6 * 3600.0:
        raise ValueError(
            "the standard campaign wants >= 6 h of simulated time so each "
            "fault has room to inject, heal, and be observed healthy"
        )
    return ChaosCampaign(
        [
            CspotPartitionInjector(
                start_s=duration_s * 0.25, duration_s=900.0,
                src="unl", dst="ucsb",
            ),
            UePowerLossInjector(
                start_s=duration_s * 0.50, duration_s=1200.0,
            ),
            HpcNodeFailureInjector(
                start_s=duration_s * 0.70, duration_s=3600.0, n_nodes=4,
            ),
        ]
    )


def randomized_campaign(
    fabric: "XGFabric",
    duration_s: float,
    n_faults: int = 6,
    kinds: Sequence[str] = ("partition", "ue-power", "hpc-nodes"),
) -> ChaosCampaign:
    """A seeded random campaign drawn from the fabric's ``"chaos"`` stream.

    Fault times land in the middle 70% of the run; kinds cycle through
    ``kinds``. Same seed, same fabric construction order -> the same
    campaign, fault for fault.
    """
    if n_faults < 1:
        raise ValueError(f"n_faults must be >= 1: {n_faults}")
    rng = fabric.engine.rng(CHAOS_CAMPAIGN)
    faults: list[FaultInjection] = []
    for i in range(n_faults):
        kind = kinds[i % len(kinds)]
        start = float(rng.uniform(0.1, 0.8) * duration_s)
        if kind == "partition":
            faults.append(
                CspotPartitionInjector(
                    start_s=start,
                    duration_s=float(rng.uniform(120.0, 1800.0)),
                    name=f"rand-partition-{i}",
                )
            )
        elif kind == "ue-power":
            faults.append(
                UePowerLossInjector(
                    start_s=start,
                    duration_s=float(rng.uniform(300.0, 1800.0)),
                    name=f"rand-ue-power-{i}",
                )
            )
        elif kind == "hpc-nodes":
            faults.append(
                HpcNodeFailureInjector(
                    start_s=start,
                    duration_s=float(rng.uniform(1800.0, 7200.0)),
                    n_nodes=int(rng.integers(1, 4)),
                    name=f"rand-hpc-{i}",
                )
            )
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
    return ChaosCampaign(faults)
