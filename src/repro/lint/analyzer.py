"""File discovery and the per-file rule-running driver."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint.context import FileContext
from repro.lint.rules import ALL_RULES, Rule
from repro.lint.violations import Violation

#: Directory names never scanned: caches, build output, and lint-fixture
#: corpora (which contain violations *on purpose*).
EXCLUDED_DIR_NAMES = frozenset(
    {
        "__pycache__",
        ".git",
        ".mypy_cache",
        ".ruff_cache",
        ".pytest_cache",
        "_artifacts",
        "build",
        "dist",
        "fixtures",
    }
)


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] = (),
    extra_known: Iterable[str] = (),
) -> tuple[Rule, ...]:
    """Resolve the active rule set from ``--select`` / ``--ignore`` codes.

    ``extra_known`` names codes handled elsewhere (the whole-program
    rules): they are legal to select/ignore here but never returned.
    """
    selected = set(c.upper() for c in select) if select is not None else None
    ignored = {c.upper() for c in ignore}
    known = {r.code for r in ALL_RULES} | {c.upper() for c in extra_known}
    unknown = ((selected or set()) | ignored) - known
    if unknown:
        raise ValueError(f"unknown rule codes: {', '.join(sorted(unknown))}")
    return tuple(
        rule
        for rule in ALL_RULES
        if (selected is None or rule.code in selected)
        and rule.code not in ignored
    )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield .py files under ``paths`` (deterministic order, excl. caches)."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.parts) & EXCLUDED_DIR_NAMES)
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def relative_posix(path: Path, root: Path | None = None) -> str:
    """Path as repo-relative posix text (stable across machines)."""
    base = root if root is not None else Path.cwd()
    try:
        rel = path.resolve().relative_to(base.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def lint_source(
    source: str,
    path: str = "<string>",
    scope: str | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Lint a source string (the rule-test entry point).

    ``scope`` overrides path-based classification -- fixture files live
    under ``tests/`` but must be checked as library (``src``) code.
    """
    active = tuple(rules) if rules is not None else ALL_RULES
    try:
        ctx = FileContext.build(path, source, scope=scope)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="REPRO000",
                message=f"file does not parse: {exc.msg}",
                line_text=(exc.text or "").strip(),
            )
        ]
    found: list[Violation] = []
    for rule in active:
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if not ctx.suppressed(violation.line, violation.code):
                found.append(violation)
    return sorted(set(found))


def lint_file(
    path: Path,
    root: Path | None = None,
    scope: str | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Lint one file; violations carry repo-relative posix paths."""
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source, path=relative_posix(path, root), scope=scope, rules=rules
    )


def lint_paths(
    paths: Sequence[Path],
    root: Path | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Lint every python file under ``paths``."""
    found: list[Violation] = []
    for file_path in iter_python_files(paths):
        found.extend(lint_file(file_path, root=root, rules=rules))
    return sorted(found)
