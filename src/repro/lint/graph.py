"""Whole-program graph: per-module summaries the cross-module passes read.

The per-file rules in :mod:`repro.lint.rules` see one module at a time;
the ``REPRO5xx`` family needs facts that only exist *between* modules --
which package owns a stream namespace, which helper builds a stream name,
which classes a pickled task reaches. This module digests every scanned
file into a small, JSON-serializable :class:`ModuleSummary` and collects
them into a :class:`ProgramGraph`.

Summaries are deliberately shallow: they record *declarations* (string
constants, stream-helper return shapes, class fields, namespace tables)
and *stream call sites* as a tiny expression IR, and leave all resolution
to the program passes. That keeps a summary a pure function of one file's
bytes, which is what makes the content-hashed :class:`SummaryCache`
sound: a file whose SHA-256 is unchanged reuses its cached summary
verbatim, so CI rebuilds only what a PR touched.

Stream name IR (the ``arg`` of a call site and the ``returns`` of a
helper) is a nested dict with a ``k`` tag:

========== ============================================================
``str``    literal string (``v``)
``fstr``   concatenation of ``parts`` (an f-string)
``name``   a module-level constant reference, import-resolved (``v``)
``param``  enclosing-function parameter (``v``, str ``default`` or None)
``self``   ``self.<v>`` attribute, with the enclosing class (``cls``)
``call``   helper call: resolved ``fn``, positional ``args``, ``kwargs``
``opaque`` anything else; resolves to a ``<v>`` placeholder
========== ============================================================
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.lint.context import ImportTable, classify_scope, _parse_suppressions

#: Bump when the summary shape changes; stale caches are discarded whole.
CACHE_VERSION = 2

#: Attribute names that read a named stream off a registry object.
_REGISTRY_METHODS = frozenset({"get", "reset"})

#: Receiver identifiers treated as an RNG registry for ``.get``/``.reset``.
_REGISTRY_RECEIVERS = frozenset({"rngs", "registry", "rng_registry"})


def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/repro/radio/population.py`` -> ``repro.radio.population``;
    ``tests/lint/test_cli.py`` -> ``tests.lint.test_cli``; an
    ``__init__.py`` names its package.
    """
    parts = list(Path(path.replace("\\", "/")).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class StreamCallSite:
    """One ``engine.rng(...)`` / ``registry.get(...)`` style draw."""

    line: int
    col: int
    method: str  # "rng" | "get" | "reset"
    arg: dict[str, Any]  # expression IR, see module docstring

    def to_json(self) -> dict[str, Any]:
        return {
            "line": self.line, "col": self.col,
            "method": self.method, "arg": self.arg,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "StreamCallSite":
        return cls(
            line=data["line"], col=data["col"],
            method=data["method"], arg=data["arg"],
        )


@dataclass
class FunctionSummary:
    """A module-level function's stream-name shape (if it has one)."""

    params: list[str]
    defaults: dict[str, str]  # param -> string default
    returns: dict[str, Any] | None  # expression IR of the return value

    def to_json(self) -> dict[str, Any]:
        return {
            "params": self.params, "defaults": self.defaults,
            "returns": self.returns,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FunctionSummary":
        return cls(
            params=list(data["params"]),
            defaults=dict(data["defaults"]),
            returns=data["returns"],
        )


@dataclass
class FieldSummary:
    """One class field: where it is declared and what type it references."""

    line: int
    #: Import-resolved dotted names appearing in the annotation.
    ann_names: list[str]
    #: Resolved target of a ``self.x = ctor(...)`` assignment, if any.
    value_call: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "line": self.line, "ann": self.ann_names, "call": self.value_call,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FieldSummary":
        return cls(
            line=data["line"], ann_names=list(data["ann"]),
            value_call=data["call"],
        )


@dataclass
class ClassSummary:
    """A class's fields (annotated and ``self.x =`` assigned) and bases."""

    line: int
    fields: dict[str, FieldSummary]
    bases: list[str]
    str_defaults: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "line": self.line,
            "fields": {k: v.to_json() for k, v in self.fields.items()},
            "bases": self.bases,
            "str_defaults": self.str_defaults,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ClassSummary":
        return cls(
            line=data["line"],
            fields={
                k: FieldSummary.from_json(v)
                for k, v in data["fields"].items()
            },
            bases=list(data["bases"]),
            str_defaults=dict(data.get("str_defaults", {})),
        )


@dataclass
class NamespaceDecl:
    """One ``StreamNamespace(...)`` entry from a ``STREAM_NAMESPACES``."""

    pattern: str
    owner: str
    description: str
    line: int

    def to_json(self) -> dict[str, Any]:
        return {
            "pattern": self.pattern, "owner": self.owner,
            "description": self.description, "line": self.line,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "NamespaceDecl":
        return cls(
            pattern=data["pattern"], owner=data["owner"],
            description=data["description"], line=data["line"],
        )


@dataclass
class ModuleSummary:
    """Everything the program passes need to know about one file."""

    path: str
    module: str
    scope: str
    constants: dict[str, str] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    namespaces: list[NamespaceDecl] = field(default_factory=list)
    seam_roots: list[str] = field(default_factory=list)
    call_sites: list[StreamCallSite] = field(default_factory=list)
    suppress_lines: dict[int, list[str]] = field(default_factory=dict)
    suppress_file: list[str] = field(default_factory=list)
    line_texts: dict[int, str] = field(default_factory=dict)

    def suppressed(self, line: int, code: str) -> bool:
        """Mirror of ``FileContext.suppressed`` over the stored maps."""
        if "*" in self.suppress_file or code in self.suppress_file:
            return True
        codes = self.suppress_lines.get(line, [])
        return "*" in codes or code in codes

    def line_text(self, line: int) -> str:
        return self.line_texts.get(line, "")

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "scope": self.scope,
            "constants": self.constants,
            "imports": self.imports,
            "functions": {k: v.to_json() for k, v in self.functions.items()},
            "classes": {k: v.to_json() for k, v in self.classes.items()},
            "namespaces": [n.to_json() for n in self.namespaces],
            "seam_roots": self.seam_roots,
            "call_sites": [c.to_json() for c in self.call_sites],
            "suppress_lines": {
                str(k): v for k, v in self.suppress_lines.items()
            },
            "suppress_file": self.suppress_file,
            "line_texts": {str(k): v for k, v in self.line_texts.items()},
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=data["path"],
            module=data["module"],
            scope=data["scope"],
            constants=dict(data["constants"]),
            imports=dict(data["imports"]),
            functions={
                k: FunctionSummary.from_json(v)
                for k, v in data["functions"].items()
            },
            classes={
                k: ClassSummary.from_json(v)
                for k, v in data["classes"].items()
            },
            namespaces=[
                NamespaceDecl.from_json(n) for n in data["namespaces"]
            ],
            seam_roots=list(data["seam_roots"]),
            call_sites=[
                StreamCallSite.from_json(c) for c in data["call_sites"]
            ],
            suppress_lines={
                int(k): list(v) for k, v in data["suppress_lines"].items()
            },
            suppress_file=list(data["suppress_file"]),
            line_texts={int(k): v for k, v in data["line_texts"].items()},
        )


class _SummaryBuilder(ast.NodeVisitor):
    """Single AST walk collecting a :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary, imports: ImportTable) -> None:
        self.s = summary
        self.imports = imports
        self._func_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self._class_stack: list[str] = []

    # -- helpers --------------------------------------------------------------

    def _enclosing_params(self) -> tuple[list[str], dict[str, str]]:
        if not self._func_stack:
            return [], {}
        return _function_params(self._func_stack[-1])

    def _expr_ir(self, node: ast.expr) -> dict[str, Any]:
        """Digest a stream-name expression into the serializable IR."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return {"k": "str", "v": node.value}
        if isinstance(node, ast.JoinedStr):
            parts = []
            for piece in node.values:
                if isinstance(piece, ast.Constant):
                    parts.append({"k": "str", "v": str(piece.value)})
                elif isinstance(piece, ast.FormattedValue):
                    parts.append(self._expr_ir(piece.value))
                else:  # pragma: no cover - f-strings only hold these two
                    parts.append({"k": "opaque", "v": "expr"})
            return {"k": "fstr", "parts": parts}
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            # "prefix" + suffix concatenation: fold into an fstr.
            return {
                "k": "fstr",
                "parts": [self._expr_ir(node.left), self._expr_ir(node.right)],
            }
        if isinstance(node, ast.Name):
            params, defaults = self._enclosing_params()
            if node.id in params:
                return {
                    "k": "param", "v": node.id,
                    "default": defaults.get(node.id),
                }
            resolved = self.imports.resolve(node)
            return {"k": "name", "v": resolved or node.id}
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self._class_stack
            ):
                return {
                    "k": "self", "v": node.attr, "cls": self._class_stack[-1],
                }
            resolved = self.imports.resolve(node)
            if resolved is not None:
                return {"k": "name", "v": resolved}
            return {"k": "opaque", "v": node.attr}
        if isinstance(node, ast.Call):
            fn = self.imports.resolve(node.func)
            if fn is not None:
                return {
                    "k": "call",
                    "fn": fn,
                    "args": [self._expr_ir(a) for a in node.args],
                    "kwargs": {
                        kw.arg: self._expr_ir(kw.value)
                        for kw in node.keywords
                        if kw.arg is not None
                    },
                }
            return {"k": "opaque", "v": "call"}
        # Loop variables, subscripts, arithmetic... -> one placeholder.
        hint = "expr"
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                hint = sub.id
                break
        return {"k": "opaque", "v": hint}

    # -- module-level declarations --------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            self._module_stmt(stmt)
        self.generic_visit(node)

    def _module_stmt(self, stmt: ast.stmt) -> None:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                self.s.constants[target.id] = value.value
            elif isinstance(value, (ast.Tuple, ast.List)):
                self._tuple_decl(target.id, value, stmt)

    def _tuple_decl(
        self, name: str, value: ast.Tuple | ast.List, stmt: ast.stmt
    ) -> None:
        if name == "PICKLE_SEAM_ROOTS":
            roots = [
                e.value
                for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            self.s.seam_roots.extend(roots)
            return
        if name != "STREAM_NAMESPACES":
            return
        for elt in value.elts:
            if not isinstance(elt, ast.Call):
                continue
            fields: dict[str, str] = {}
            order = ("pattern", "owner", "description")
            for pos, arg in enumerate(elt.args[: len(order)]):
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    fields[order[pos]] = arg.value
            for kw in elt.keywords:
                if (
                    kw.arg in order
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    fields[kw.arg] = kw.value.value
            if "pattern" in fields:
                self.s.namespaces.append(
                    NamespaceDecl(
                        pattern=fields["pattern"],
                        owner=fields.get("owner", ""),
                        description=fields.get("description", ""),
                        line=elt.lineno,
                    )
                )

    # -- functions ------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node)

    def _function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._func_stack.append(node)
        if not self._class_stack and len(self._func_stack) == 1:
            self._summarize_helper(node)
        self.generic_visit(node)
        self._func_stack.pop()

    def _summarize_helper(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """Record a top-level function's return IR (stream helpers)."""
        params, defaults = _function_params(node)
        returns: dict[str, Any] | None = None
        for stmt in node.body:
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                returns = self._expr_ir(stmt.value)
                break  # first return is the canonical shape
        if returns is not None and returns["k"] in ("str", "fstr", "call"):
            self.s.functions[node.name] = FunctionSummary(
                params=params, defaults=defaults, returns=returns
            )

    # -- classes --------------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        fields: dict[str, FieldSummary] = {}
        str_defaults: dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields[stmt.target.id] = FieldSummary(
                    line=stmt.lineno,
                    ann_names=self._annotation_names(stmt.annotation),
                    value_call=self._value_call(stmt.value),
                )
                if isinstance(stmt.value, ast.Constant) and isinstance(
                    stmt.value.value, str
                ):
                    str_defaults[stmt.target.id] = stmt.value.value
        for stmt in node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__init__"
            ):
                self._init_fields(stmt, fields, str_defaults)
        bases = []
        for base in node.bases:
            resolved = self.imports.resolve(base)
            if resolved is not None:
                bases.append(resolved)
        self.s.classes[node.name] = ClassSummary(
            line=node.lineno,
            fields=fields,
            bases=bases,
            str_defaults=str_defaults,
        )
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _init_fields(
        self,
        init: ast.FunctionDef | ast.AsyncFunctionDef,
        fields: dict[str, FieldSummary],
        str_defaults: dict[str, str],
    ) -> None:
        """Harvest ``self.x = ...`` fields, typing them from the parameter
        annotation when the value is a plain parameter passthrough."""
        param_anns: dict[str, list[str]] = {}
        param_strs: dict[str, str] = {}
        args = init.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for arg in all_args:
            if arg.annotation is not None:
                param_anns[arg.arg] = self._annotation_names(arg.annotation)
        _, defaults = _function_params(init)
        param_strs.update(defaults)
        for stmt in ast.walk(init):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                name = target.attr
                if name in fields:
                    continue
                ann_names: list[str] = []
                value_call: str | None = None
                if isinstance(stmt, ast.AnnAssign):
                    ann_names = self._annotation_names(stmt.annotation)
                elif isinstance(value, ast.Name) and value.id in param_anns:
                    ann_names = param_anns[value.id]
                    if value.id in param_strs:
                        str_defaults.setdefault(name, param_strs[value.id])
                value_call = self._value_call(value)
                fields[name] = FieldSummary(
                    line=stmt.lineno,
                    ann_names=ann_names,
                    value_call=value_call,
                )
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    str_defaults.setdefault(name, value.value)

    def _value_call(self, value: ast.expr | None) -> str | None:
        if isinstance(value, ast.Call):
            return self.imports.resolve(value.func)
        return None

    def _annotation_names(self, annotation: ast.expr | None) -> list[str]:
        if annotation is None:
            return []
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return []
        names: list[str] = []
        for sub in ast.walk(annotation):
            if isinstance(sub, (ast.Name, ast.Attribute)):
                resolved = self.imports.resolve(sub)
                if resolved is not None and resolved not in names:
                    names.append(resolved)
        return names

    # -- stream call sites ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        method = self._stream_method(node)
        if method is not None and len(node.args) >= 1:
            site = StreamCallSite(
                line=node.lineno,
                col=node.col_offset,
                method=method,
                arg=self._expr_ir(node.args[0]),
            )
            self.s.call_sites.append(site)
        self.generic_visit(node)

    def _stream_method(self, node: ast.Call) -> str | None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr == "rng":
            return "rng"
        if func.attr not in _REGISTRY_METHODS:
            return None
        receiver = func.value
        tail = None
        if isinstance(receiver, ast.Name):
            tail = receiver.id
        elif isinstance(receiver, ast.Attribute):
            tail = receiver.attr
        if tail in _REGISTRY_RECEIVERS:
            return func.attr
        if isinstance(receiver, ast.Name) and self._param_is_registry(
            receiver.id
        ):
            return func.attr
        return None

    def _param_is_registry(self, name: str) -> bool:
        for func in reversed(self._func_stack):
            args = func.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.arg != name or arg.annotation is None:
                    continue
                resolved = self.imports.resolve(arg.annotation)
                return resolved is not None and resolved.endswith(
                    "RngRegistry"
                )
        return False


def _function_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[list[str], dict[str, str]]:
    """Parameter names and their string-literal defaults."""
    args = node.args
    ordered = [*args.posonlyargs, *args.args]
    params = [a.arg for a in ordered] + [a.arg for a in args.kwonlyargs]
    defaults: dict[str, str] = {}
    tail = ordered[len(ordered) - len(args.defaults):] if args.defaults else []
    for arg, default in zip(tail, args.defaults):
        if isinstance(default, ast.Constant) and isinstance(default.value, str):
            defaults[arg.arg] = default.value
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if isinstance(kw_default, ast.Constant) and isinstance(
            kw_default.value, str
        ):
            defaults[arg.arg] = kw_default.value
    return params, defaults


def summarize_source(path: str, source: str) -> ModuleSummary:
    """Digest one file into its :class:`ModuleSummary`.

    Unparseable files yield an empty summary -- the per-file analyzer
    already reports them as REPRO000.
    """
    summary = ModuleSummary(
        path=path, module=module_name_for(path), scope=classify_scope(path)
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return summary
    imports = ImportTable(tree)
    summary.imports = imports.as_dict()
    builder = _SummaryBuilder(summary, imports)
    builder.visit(tree)
    per_line, file_wide = _parse_suppressions(source)
    summary.suppress_lines = {k: sorted(v) for k, v in per_line.items()}
    summary.suppress_file = sorted(file_wide)
    lines = source.splitlines()
    wanted: set[int] = set()
    for site in summary.call_sites:
        wanted.add(site.line)
    for decl in summary.namespaces:
        wanted.add(decl.line)
    for cls in summary.classes.values():
        wanted.add(cls.line)
        for f in cls.fields.values():
            wanted.add(f.line)
    summary.line_texts = {
        n: lines[n - 1] for n in sorted(wanted) if 1 <= n <= len(lines)
    }
    return summary


@dataclass
class ProgramGraph:
    """All module summaries, indexed by dotted module name."""

    modules: dict[str, ModuleSummary] = field(default_factory=dict)

    def add(self, summary: ModuleSummary) -> None:
        self.modules[summary.module] = summary

    def module(self, name: str) -> ModuleSummary | None:
        return self.modules.get(name)

    def resolve_constant(
        self, dotted: str, home: ModuleSummary, _depth: int = 0
    ) -> str | None:
        """Find the string value of a (possibly re-exported) constant."""
        if _depth > 8:
            return None
        if "." not in dotted:
            if dotted in home.constants:
                return home.constants[dotted]
            origin = home.imports.get(dotted)
            if origin is not None and origin != dotted:
                return self.resolve_constant(origin, home, _depth + 1)
            return None
        mod_name, _, attr = dotted.rpartition(".")
        target = self.module(mod_name)
        if target is None:
            return None
        if attr in target.constants:
            return target.constants[attr]
        origin = target.imports.get(attr)
        if origin is not None and origin != dotted:
            return self.resolve_constant(origin, target, _depth + 1)
        return None

    def resolve_function(
        self, dotted: str, _depth: int = 0
    ) -> tuple[ModuleSummary, FunctionSummary] | None:
        """Find a helper's summary, following one-hop re-export chains."""
        if _depth > 8 or "." not in dotted:
            return None
        mod_name, _, attr = dotted.rpartition(".")
        target = self.module(mod_name)
        if target is None:
            return None
        if attr in target.functions:
            return target, target.functions[attr]
        origin = target.imports.get(attr)
        if origin is not None and origin != dotted:
            return self.resolve_function(origin, _depth + 1)
        return None

    def resolve_class(
        self, dotted: str, home: ModuleSummary | None = None, _depth: int = 0
    ) -> tuple[ModuleSummary, str, ClassSummary] | None:
        """Find a class summary from a dotted or home-local name."""
        if _depth > 8:
            return None
        if "." not in dotted:
            if home is not None and dotted in home.classes:
                return home, dotted, home.classes[dotted]
            if home is not None:
                origin = home.imports.get(dotted)
                if origin is not None and origin != dotted:
                    return self.resolve_class(origin, None, _depth + 1)
            return None
        mod_name, _, attr = dotted.rpartition(".")
        target = self.module(mod_name)
        if target is None:
            return None
        if attr in target.classes:
            return target, attr, target.classes[attr]
        origin = target.imports.get(attr)
        if origin is not None and origin != dotted:
            return self.resolve_class(origin, None, _depth + 1)
        return None

    def all_namespaces(self) -> list[tuple[ModuleSummary, NamespaceDecl]]:
        """Every declared namespace, deduplicated, in module order."""
        seen: set[tuple[str, str]] = set()
        out: list[tuple[ModuleSummary, NamespaceDecl]] = []
        for name in sorted(self.modules):
            summary = self.modules[name]
            for decl in summary.namespaces:
                key = (decl.pattern, decl.owner)
                if key in seen:
                    continue
                seen.add(key)
                out.append((summary, decl))
        return out

    def all_seam_roots(self) -> list[tuple[ModuleSummary, str]]:
        out: list[tuple[ModuleSummary, str]] = []
        for name in sorted(self.modules):
            summary = self.modules[name]
            for root in summary.seam_roots:
                out.append((summary, root))
        return out


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class SummaryCache:
    """Content-hashed summary store keeping CI's ``--program`` pass fast.

    The file maps repo-relative path -> ``{sha, summary}``. A hit requires
    an exact SHA-256 match of the file bytes, so the cache can never serve
    stale analysis; a version bump discards the whole file.
    """

    def __init__(self, path: Path | None) -> None:
        self.path = path
        self._entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = {}
            if data.get("version") == CACHE_VERSION:
                self._entries = data.get("files", {})

    def summarize(self, rel_path: str, source_bytes: bytes) -> ModuleSummary:
        sha = _sha256(source_bytes)
        entry = self._entries.get(rel_path)
        if entry is not None and entry.get("sha") == sha:
            try:
                summary = ModuleSummary.from_json(entry["summary"])
            except (KeyError, TypeError, ValueError):
                summary = None  # type: ignore[assignment]
            if summary is not None:
                self.hits += 1
                return summary
        self.misses += 1
        summary = summarize_source(
            rel_path, source_bytes.decode("utf-8", errors="replace")
        )
        self._entries[rel_path] = {"sha": sha, "summary": summary.to_json()}
        return summary

    def save(self, live_paths: Iterable[str]) -> None:
        """Write the cache, dropping entries for files no longer scanned."""
        if self.path is None:
            return
        live = set(live_paths)
        files = {k: v for k, v in self._entries.items() if k in live}
        payload = {"version": CACHE_VERSION, "files": files}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )


def build_graph(
    files: Sequence[tuple[str, bytes]], cache: SummaryCache | None = None
) -> ProgramGraph:
    """Summarize ``(rel_path, bytes)`` pairs into a :class:`ProgramGraph`."""
    graph = ProgramGraph()
    for rel_path, data in files:
        if cache is not None:
            summary = cache.summarize(rel_path, data)
        else:
            summary = summarize_source(
                rel_path, data.decode("utf-8", errors="replace")
            )
        graph.add(summary)
    return graph
