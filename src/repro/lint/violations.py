"""Violation records and stable fingerprints for baselining."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at a specific source location.

    Ordering is (path, line, col, code) so reports and baselines are
    deterministic regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    #: The stripped text of the offending source line; used for the
    #: fingerprint so baselined entries survive unrelated line moves.
    line_text: str = ""

    def format(self) -> str:
        """Render as ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Hashes (code, file basename, stripped line text) -- not the line
        *number*, so inserting unrelated lines above a baselined violation
        does not invalidate the entry, and not the *directory*, so moving
        a file (a refactor that changes no line of code) keeps its
        baselined entries matching.
        """
        basename = self.path.replace("\\", "/").rsplit("/", 1)[-1]
        payload = f"{self.code}|{basename}|{self.line_text.strip()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
