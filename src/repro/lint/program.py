"""Whole-program passes: the ``REPRO5xx`` rule family and its driver.

``python -m repro.lint --program`` builds a :class:`~repro.lint.graph
.ProgramGraph` over every scanned file and runs the cross-module checks
that per-file rules cannot express:

* **Stream provenance** (REPRO501-504, :mod:`repro.lint.provenance`):
  every RNG draw site is resolved to a name template and attributed to a
  declared namespace.
* **Shard-boundary purity** (REPRO511, this module): every class
  reachable from the pickling seam roots (``PICKLE_SEAM_ROOTS`` in
  :mod:`repro.parallel.worker`) must hold pure data -- no engines,
  tracers, live generators, open handles or callables. Ambient state
  shipped across the coordinator->worker pipe silently stops worker
  results being a function of ``(task, seed)``.

Program rules are deliberately a separate registry from the per-file
``ALL_RULES``: they have no single-file fixture semantics (their
positive/negative cases are mini-trees under
``tests/lint/fixtures/program/``), and the per-file CLI paths keep
working without building a graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.lint.analyzer import iter_python_files, relative_posix
from repro.lint.graph import (
    ModuleSummary,
    ProgramGraph,
    SummaryCache,
    build_graph,
)
from repro.lint.provenance import (
    ResolvedSite,
    check_collisions,
    check_dead_namespaces,
    check_foreign_draws,
    check_unregistered,
    resolve_sites,
)
from repro.lint.violations import Violation

#: Types that are *ambient state* on a pickled shard boundary: live
#: machinery whose identity/state is process-local, as resolved dotted
#: names. A task field reaching any of these (transitively, through
#: dataclass fields) trips REPRO511.
AMBIENT_TYPES = frozenset(
    {
        "repro.simkernel.engine.Engine",
        "repro.simkernel.Engine",
        "repro.obs.trace.Tracer",
        "repro.obs.Tracer",
        "repro.obs.metrics.MetricsRegistry",
        "repro.obs.MetricsRegistry",
        "repro.simkernel.rng.RngRegistry",
        "repro.simkernel.RngRegistry",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.BitGenerator",
        "multiprocessing.connection.Connection",
        "threading.Thread",
        "threading.Lock",
        "threading.RLock",
        "threading.Event",
        "threading.Condition",
        "socket.socket",
        "typing.IO",
        "typing.TextIO",
        "typing.BinaryIO",
        "io.IOBase",
        "io.TextIOBase",
        "io.BufferedIOBase",
        "io.TextIOWrapper",
        "typing.Callable",
        "collections.abc.Callable",
    }
)

#: Constructors whose *result* is ambient even without an annotation.
AMBIENT_CONSTRUCTORS = frozenset(
    {
        "open",
        "io.open",
        "socket.socket",
        "threading.Thread",
        "threading.Lock",
        "threading.RLock",
    }
)


@dataclass(frozen=True)
class ProgramRule:
    """One whole-program invariant, mirroring the per-file ``Rule`` shape."""

    code: str
    name: str
    rationale: str
    check: Callable[[ProgramGraph, list[ResolvedSite]], Iterator[Violation]]


def _purity_check(
    graph: ProgramGraph, _sites: list[ResolvedSite]
) -> Iterator[Violation]:
    """REPRO511: walk seam-root fields; reject ambient state."""
    for home, root in graph.all_seam_roots():
        located = graph.resolve_class(root, home)
        if located is None:
            yield Violation(
                path=home.path,
                line=1,
                col=0,
                code="REPRO511",
                message=(
                    f"pickle seam root `{root}` does not resolve to a "
                    "known class; fix the PICKLE_SEAM_ROOTS entry"
                ),
                line_text=home.line_text(1),
            )
            continue
        root_mod, root_name, root_cls = located
        visited: set[tuple[str, str]] = set()
        stack = [(root_mod, root_name, root_cls, root_name)]
        while stack:
            mod, cls_name, cls, chain = stack.pop()
            if (mod.module, cls_name) in visited:
                continue
            visited.add((mod.module, cls_name))
            for field_name in sorted(cls.fields):
                field = cls.fields[field_name]
                field_chain = f"{chain}.{field_name}"
                ambient = sorted(
                    set(field.ann_names) & AMBIENT_TYPES
                )
                if field.value_call in AMBIENT_CONSTRUCTORS:
                    ambient.append(field.value_call)
                if ambient:
                    yield Violation(
                        path=mod.path,
                        line=field.line,
                        col=0,
                        code="REPRO511",
                        message=(
                            f"`{field_chain}` holds ambient state "
                            f"({', '.join(ambient)}) reachable from the "
                            f"pickling seam root `{root}`; everything "
                            "crossing the worker boundary must be pure "
                            "data or worker results stop being a function "
                            "of (task, seed)"
                        ),
                        line_text=mod.line_text(field.line),
                    )
                    continue
                for ann in field.ann_names:
                    nested = graph.resolve_class(ann, mod)
                    if nested is not None:
                        n_mod, n_name, n_cls = nested
                        stack.append((n_mod, n_name, n_cls, field_chain))


def _provenance_rule(
    check: Callable[..., Iterator[Violation]], needs_graph: bool
) -> Callable[[ProgramGraph, list[ResolvedSite]], Iterator[Violation]]:
    if needs_graph:
        return lambda graph, sites: check(graph, sites)
    return lambda graph, sites: check(sites)


PROGRAM_RULES: tuple[ProgramRule, ...] = (
    ProgramRule(
        code="REPRO501",
        name="stream-namespace-collision",
        rationale=(
            "Two declared stream namespaces whose patterns overlap give "
            "two subsystems the same (master seed, name) keyed generator: "
            "correlated randomness by construction. Patterns must be "
            "mutually exclusive."
        ),
        check=lambda graph, sites: check_collisions(graph),
    ),
    ProgramRule(
        code="REPRO502",
        name="foreign-stream-draw",
        rationale=(
            "Library code drawing a stream owned by another package "
            "couples the two subsystems' randomness: re-ordering either "
            "side's draws perturbs the other. Only the owning package "
            "(or a helper it exports) may draw its streams."
        ),
        check=lambda graph, sites: check_foreign_draws(sites),
    ),
    ProgramRule(
        code="REPRO503",
        name="dead-stream-namespace",
        rationale=(
            "A declared namespace no call site draws is registry rot: it "
            "documents a contract nothing honours and masks typos (the "
            "real call site silently falls into REPRO504 territory)."
        ),
        check=lambda graph, sites: check_dead_namespaces(graph, sites),
    ),
    ProgramRule(
        code="REPRO504",
        name="unregistered-stream",
        rationale=(
            "A library draw site matching no declared namespace is an "
            "ad-hoc stream name: nothing guards it against collisions and "
            "the registry page stops being the single source of truth. "
            "Declare the namespace and build the name via its constant or "
            "helper."
        ),
        check=lambda graph, sites: check_unregistered(sites),
    ),
    ProgramRule(
        code="REPRO511",
        name="shard-ambient-state",
        rationale=(
            "Classes pickled across the coordinator->worker seam "
            "(PICKLE_SEAM_ROOTS) must be pure data. An engine, tracer, "
            "generator, open handle or callable inside a task ships "
            "process-local state into the worker, so results silently "
            "stop being a function of (task, seed) -- the exact invariant "
            "the sharded executor exists to keep."
        ),
        check=_purity_check,
    ),
)

PROGRAM_RULES_BY_CODE: dict[str, ProgramRule] = {
    rule.code: rule for rule in PROGRAM_RULES
}
if len(PROGRAM_RULES_BY_CODE) != len(PROGRAM_RULES):  # pragma: no cover
    raise RuntimeError("duplicate rule codes in PROGRAM_RULES")


def read_program_files(
    paths: Sequence[Path], root: Path | None = None
) -> list[tuple[str, bytes]]:
    """``(repo-relative posix path, bytes)`` for every scanned file."""
    return [
        (relative_posix(path, root), path.read_bytes())
        for path in iter_python_files(paths)
    ]


def select_program_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] = (),
) -> tuple[ProgramRule, ...]:
    """Subset of program rules matching ``--select`` / ``--ignore``."""
    selected = set(c.upper() for c in select) if select is not None else None
    ignored = {c.upper() for c in ignore}
    return tuple(
        rule
        for rule in PROGRAM_RULES
        if (selected is None or rule.code in selected)
        and rule.code not in ignored
    )


def analyze_graph(
    graph: ProgramGraph,
    rules: Sequence[ProgramRule] | None = None,
) -> list[Violation]:
    """Run the program rules over a built graph (suppressions applied)."""
    active = tuple(rules) if rules is not None else PROGRAM_RULES
    by_path: dict[str, ModuleSummary] = {
        s.path: s for s in graph.modules.values()
    }
    sites = resolve_sites(graph)
    found: list[Violation] = []
    for rule in active:
        for violation in rule.check(graph, sites):
            mod = by_path.get(violation.path)
            if mod is not None and mod.suppressed(
                violation.line, violation.code
            ):
                continue
            found.append(violation)
    return sorted(set(found))


def analyze_program(
    paths: Sequence[Path],
    root: Path | None = None,
    cache_path: Path | None = None,
    rules: Sequence[ProgramRule] | None = None,
) -> tuple[list[Violation], ProgramGraph]:
    """Build the graph over ``paths`` and run every program rule."""
    files = read_program_files(paths, root)
    cache = SummaryCache(cache_path) if cache_path is not None else None
    graph = build_graph(files, cache)
    if cache is not None:
        cache.save(rel for rel, _ in files)
    return analyze_graph(graph, rules), graph
