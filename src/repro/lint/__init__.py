"""repro.lint: AST-based determinism & simulation-safety analyzer.

The determinism guarantees the test suite asserts (byte-identical
same-seed traces, bit-identical chaos reports) rest on code conventions:
named RNG streams from :class:`repro.simkernel.rng.RngRegistry`, engine
virtual time instead of wall clocks, no hidden global state. This package
enforces those conventions statically:

* a rule catalog with stable ``REPROnnn`` codes (:mod:`repro.lint.rules`),
* per-line ``# repro-lint: disable=CODE`` suppressions
  (:mod:`repro.lint.context`),
* a checked-in baseline for grandfathered debt (:mod:`repro.lint.baseline`),
* a CLI: ``python -m repro.lint src tests benchmarks``
  (:mod:`repro.lint.cli`).

See ``docs/static-analysis.md`` for the full rule catalog.
"""

from repro.lint.analyzer import (
    lint_file,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.cli import main
from repro.lint.context import FileContext, classify_scope
from repro.lint.rules import ALL_RULES, RULES_BY_CODE, Rule
from repro.lint.violations import Violation

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "RULES_BY_CODE",
    "Rule",
    "Violation",
    "classify_scope",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "select_rules",
]
