"""repro.lint: AST-based determinism & simulation-safety analyzer.

The determinism guarantees the test suite asserts (byte-identical
same-seed traces, bit-identical chaos reports) rest on code conventions:
named RNG streams from :class:`repro.simkernel.rng.RngRegistry`, engine
virtual time instead of wall clocks, no hidden global state. This package
enforces those conventions statically:

* a rule catalog with stable ``REPROnnn`` codes (:mod:`repro.lint.rules`),
* per-line ``# repro-lint: disable=CODE`` suppressions
  (:mod:`repro.lint.context`),
* a checked-in baseline for grandfathered debt (:mod:`repro.lint.baseline`),
* whole-program ``REPRO5xx`` passes over a cached module graph -- RNG
  stream provenance, shard-boundary purity (:mod:`repro.lint.graph`,
  :mod:`repro.lint.provenance`, :mod:`repro.lint.program`),
* a CLI: ``python -m repro.lint --program src tests benchmarks``
  (:mod:`repro.lint.cli`).

See ``docs/static-analysis.md`` for the full rule catalog.
"""

from repro.lint.analyzer import (
    lint_file,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.cli import main
from repro.lint.context import FileContext, classify_scope
from repro.lint.graph import ProgramGraph, SummaryCache, build_graph
from repro.lint.program import (
    PROGRAM_RULES,
    PROGRAM_RULES_BY_CODE,
    ProgramRule,
    analyze_graph,
    analyze_program,
    select_program_rules,
)
from repro.lint.provenance import render_stream_registry, resolve_sites
from repro.lint.rules import ALL_RULES, RULES_BY_CODE, Rule
from repro.lint.violations import Violation

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "PROGRAM_RULES",
    "PROGRAM_RULES_BY_CODE",
    "ProgramGraph",
    "ProgramRule",
    "RULES_BY_CODE",
    "Rule",
    "SummaryCache",
    "Violation",
    "analyze_graph",
    "analyze_program",
    "build_graph",
    "classify_scope",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "render_stream_registry",
    "resolve_sites",
    "select_program_rules",
    "select_rules",
]
