"""The rule catalog: each rule encodes one determinism/safety invariant.

Rules are AST visitors over a shared :class:`~repro.lint.context.FileContext`.
Each has a stable code (``REPROnnn``), a scope set (library code vs. test
harness code), and an allowlist of path suffixes where the invariant is
deliberately relaxed (the dual-clock seams in ``repro.obs`` and the CFD
wall-time measurement).

Codes group by family:

* ``REPRO1xx`` -- clock discipline (simulated time vs. wall time)
* ``REPRO2xx`` -- randomness discipline (named registry streams)
* ``REPRO3xx`` -- numeric discipline (float comparisons)
* ``REPRO4xx`` -- general simulation safety (mutable defaults, bare except,
  blocking I/O in engine callbacks)
* ``REPRO5xx`` -- whole-program determinism. REPRO521 (wall-clock taint)
  lives here as a per-file dataflow rule; REPRO501-511 need the module
  graph and live in :mod:`repro.lint.program`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.context import FileContext
from repro.lint.violations import Violation

#: Wall-clock reads. Simulation code must use ``engine.now``; these leak
#: host time into traces and break same-seed bit-identity.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Constructors of independent RNG state. Library code must draw from a
#: named :class:`repro.simkernel.rng.RngRegistry` stream instead.
RNG_CONSTRUCTOR_CALLS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
        "numpy.random.SeedSequence",
    }
)

#: Functions operating on *global* (hidden, shared) RNG state -- the
#: numpy legacy module-level API and the stdlib ``random`` module.
GLOBAL_RNG_CALLS = frozenset(
    {f"numpy.random.{name}" for name in (
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "normal", "uniform", "choice", "shuffle",
        "permutation", "poisson", "exponential", "binomial", "lognormal",
        "standard_normal", "standard_cauchy", "gamma", "beta", "bytes",
    )}
    | {f"random.{name}" for name in (
        "seed", "random", "randint", "randrange", "uniform", "gauss",
        "normalvariate", "lognormvariate", "expovariate", "betavariate",
        "choice", "choices", "shuffle", "sample", "getrandbits",
        "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
    )}
)

#: Calls that block on the host (I/O, sleeps, subprocesses). Inside an
#: engine callback these stall the *event loop*, not simulated time.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "input",
        "open",
        "os.system",
        "socket.socket",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.request",
        "http.client.HTTPConnection",
    }
)

#: Method names through which callables are registered on the simkernel
#: engine / event layer (see ``Engine.add_trace_hook``,
#: ``Event.add_callback``).
HANDLER_REGISTRATION_METHODS = frozenset({"add_callback", "add_trace_hook"})


class Rule:
    """Base class: one invariant, one stable code."""

    code: str = ""
    name: str = ""
    rationale: str = ""
    #: Scopes the rule applies to (subset of ``context.SCOPES``).
    scopes: frozenset[str] = frozenset({"src"})
    #: Path suffixes (posix) where the invariant is deliberately relaxed.
    allow_suffixes: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.scope not in self.scopes:
            return False
        norm = ctx.path.replace("\\", "/")
        return not any(norm.endswith(suffix) for suffix in self.allow_suffixes)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            path=ctx.path,
            line=line,
            col=col,
            code=self.code,
            message=message,
            line_text=ctx.line_text(line),
        )


def _call_targets(ctx: FileContext) -> Iterator[tuple[ast.Call, str]]:
    """Yield every call in the module with its resolved dotted target."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            qualified = ctx.imports.resolve(node.func)
            if qualified is not None:
                yield node, qualified


class WallClockRule(Rule):
    """REPRO101: no wall-clock reads in simulation code."""

    code = "REPRO101"
    name = "wall-clock-in-sim"
    rationale = (
        "Simulation code must read time from `engine.now` (virtual time); "
        "host-clock reads make traces run-dependent and break same-seed "
        "bit-identity. The obs tracer and the CFD solver's wall-time probe "
        "are the two deliberate dual-clock seams and are allowlisted."
    )
    scopes = frozenset({"src"})
    allow_suffixes = (
        "repro/obs/trace.py",  # dual-clock spans: wall time is the point
        "repro/cfd/solver.py",  # solver wall-time measurement (perf probe)
        "repro/parallel/worker.py",  # shard compute-wall probe (side channel)
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node, target in _call_targets(ctx):
            if target in WALL_CLOCK_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock call `{target}()` in simulation code; "
                    "use the engine's virtual clock (`engine.now`)",
                )


class RngConstructionRule(Rule):
    """REPRO201: RNG state is constructed only inside the registry."""

    code = "REPRO201"
    name = "rng-construction-outside-registry"
    rationale = (
        "Library code constructing its own generator forks RNG state that "
        "the master seed does not control. All streams must come from "
        "`repro.simkernel.rng.RngRegistry` (usually via `engine.rng(name)`) "
        "or be accepted as a `numpy.random.Generator` parameter."
    )
    scopes = frozenset({"src"})
    allow_suffixes = ("repro/simkernel/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node, target in _call_targets(ctx):
            if target in RNG_CONSTRUCTOR_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"`{target}()` constructs RNG state outside the registry; "
                    "draw a named stream via `engine.rng(name)` / "
                    "`RngRegistry.get(name)` or accept a Generator parameter",
                )


class GlobalRandomRule(Rule):
    """REPRO202: no hidden global RNG state, anywhere."""

    code = "REPRO202"
    name = "global-rng-state"
    rationale = (
        "`np.random.<fn>` module calls and the stdlib `random` module share "
        "hidden global state: any other consumer perturbs the sequence, so "
        "results depend on import/execution order. Banned in library *and* "
        "test code -- tests seed explicit generators instead."
    )
    scopes = frozenset({"src", "tests", "benchmarks", "examples"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node, target in _call_targets(ctx):
            if target in GLOBAL_RNG_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"`{target}()` mutates/draws hidden global RNG state; "
                    "use an explicit seeded `numpy.random.Generator`",
                )


class UnseededRngRule(Rule):
    """REPRO203: every constructed generator names its seed."""

    code = "REPRO203"
    name = "unseeded-rng"
    rationale = (
        "`default_rng()` with no seed pulls OS entropy: the run is "
        "unreproducible by construction. Even in tests, generators must "
        "be seeded so failures replay."
    )
    scopes = frozenset({"src", "tests", "benchmarks", "examples"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node, target in _call_targets(ctx):
            if target not in RNG_CONSTRUCTOR_CALLS:
                continue
            if target.endswith(".SeedSequence"):
                continue  # SeedSequence() spawning is a seeding mechanism
            seeded = bool(node.args) or bool(node.keywords)
            if node.args and _is_none(node.args[0]):
                seeded = False
            for kw in node.keywords:
                if kw.arg == "seed" and _is_none(kw.value):
                    seeded = False
            if not seeded:
                yield self.violation(
                    ctx,
                    node,
                    f"`{target}()` without a seed draws OS entropy; pass an "
                    "explicit seed (derive via `RngRegistry`/`derive_seed`)",
                )


class RngDefaultArgRule(Rule):
    """REPRO204: no RNG constructed in a default argument."""

    code = "REPRO204"
    name = "rng-default-argument"
    rationale = (
        "A default like `rng=np.random.default_rng(0)` is evaluated once at "
        "import and silently shared by every call -- and its fixed seed "
        "ignores the registry's master seed (the `cspot.faults` bug). "
        "Require the caller to pass a registry-derived generator."
    )
    scopes = frozenset({"src", "tests", "benchmarks", "examples"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: list[ast.expr] = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                for sub in ast.walk(default):
                    if not isinstance(sub, ast.Call):
                        continue
                    target = ctx.imports.resolve(sub.func)
                    if target in RNG_CONSTRUCTOR_CALLS:
                        yield self.violation(
                            ctx,
                            sub,
                            f"RNG constructed in default argument of "
                            f"`{node.name}()`: evaluated once at import with "
                            "a seed outside registry control; require an "
                            "explicit generator instead",
                        )


class HashSeedRule(Rule):
    """REPRO205: no builtin ``hash()`` for seed derivation."""

    code = "REPRO205"
    name = "hash-based-seed"
    rationale = (
        "Builtin `hash()` of a str/bytes is salted per-process "
        "(PYTHONHASHSEED), so hash-derived seeds differ across runs and "
        "platforms. Use `repro.simkernel.rng.derive_seed` (SHA-256)."
    )
    scopes = frozenset({"src"})
    allow_suffixes = ("repro/simkernel/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node, target in _call_targets(ctx):
            if target == "hash":
                yield self.violation(
                    ctx,
                    node,
                    "builtin `hash()` is salted per-process; derive seeds "
                    "with `repro.simkernel.rng.derive_seed` (stable SHA-256)",
                )


class FloatEqualityRule(Rule):
    """REPRO301: no exact equality against float literals."""

    code = "REPRO301"
    name = "float-literal-equality"
    rationale = (
        "`x == 0.35` on field data silently depends on rounding of the "
        "producing expression; compare with a tolerance "
        "(`math.isclose`, `numpy.isclose`) or against exact sentinels. "
        "Comparisons with 0.0 are allowed: zero is the exact "
        "cleared/sentinel value throughout the solvers."
    )
    scopes = frozenset({"src"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands: list[ast.expr] = [node.left, *node.comparators]
            for op, (left, right) in zip(
                node.ops, zip(operands[:-1], operands[1:])
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                        and side.value != 0.0
                    ):
                        yield self.violation(
                            ctx,
                            node,
                            f"exact {'==' if isinstance(op, ast.Eq) else '!='} "
                            f"against float literal {side.value!r}; use "
                            "`math.isclose`/`numpy.isclose` or an exact "
                            "integer/zero sentinel",
                        )
                        break


class MutableDefaultRule(Rule):
    """REPRO401: no mutable default arguments."""

    code = "REPRO401"
    name = "mutable-default-argument"
    rationale = (
        "A `[]`/`{}`/`set()` default is one shared object across every "
        "call: state leaks between invocations (and between test cases), "
        "which shows up as order-dependent, unreproducible behaviour."
    )
    scopes = frozenset({"src", "tests", "benchmarks", "examples"})

    _mutable_ctors = frozenset({"list", "dict", "set", "collections.deque"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: list[ast.expr] = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if self._is_mutable(ctx, default):
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default argument in `{node.name}()`; "
                        "default to None (or a tuple/frozenset) and build "
                        "the container inside the body",
                    )

    def _is_mutable(self, ctx: FileContext, default: ast.expr) -> bool:
        if isinstance(
            default,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(default, ast.Call):
            target = ctx.imports.resolve(default.func)
            return target in self._mutable_ctors
        return False


class BareExceptRule(Rule):
    """REPRO402: no bare ``except:`` clauses."""

    code = "REPRO402"
    name = "bare-except"
    rationale = (
        "`except:` swallows SystemExit/KeyboardInterrupt and, worse here, "
        "the simkernel's Interrupt delivery -- a process that catches its "
        "own interrupt deadlocks the campaign. Catch concrete exceptions."
    )
    scopes = frozenset({"src", "tests", "benchmarks", "examples"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare `except:` swallows KeyboardInterrupt and simkernel "
                    "Interrupt delivery; catch `Exception` or narrower",
                )


class BlockingHandlerRule(Rule):
    """REPRO403: engine callbacks must not perform blocking I/O."""

    code = "REPRO403"
    name = "blocking-io-in-handler"
    rationale = (
        "Callables registered via `add_callback`/`add_trace_hook` run "
        "synchronously inside `Engine.step()`: a `time.sleep` or file/"
        "network call there stalls the whole event loop in *wall* time "
        "while the virtual clock stands still, destroying the sim/real "
        "timing fidelity the traces claim."
    )
    scopes = frozenset({"src"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        handler_names: set[str] = set()
        inline_handlers: list[ast.expr] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in HANDLER_REGISTRATION_METHODS
            ):
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    handler_names.add(arg.id)
                elif isinstance(arg, ast.Attribute):
                    handler_names.add(arg.attr)
                elif isinstance(arg, ast.Lambda):
                    inline_handlers.append(arg.body)

        bodies: list[Sequence[ast.AST]] = [inline_handlers]
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in handler_names
            ):
                bodies.append(node.body)

        for body in bodies:
            for stmt in body:
                for sub in ast.walk(stmt):
                    if not isinstance(sub, ast.Call):
                        continue
                    target = ctx.imports.resolve(sub.func)
                    if target in BLOCKING_CALLS:
                        yield self.violation(
                            ctx,
                            sub,
                            f"blocking call `{target}()` inside an engine "
                            "event handler stalls the run loop in wall time; "
                            "schedule work as a process/timeout instead",
                        )


#: Entry points into process-level parallelism. Sanctioned only inside
#: ``repro.parallel`` (and its tests), which owns the spawn-context
#: sharding protocol.
PROCESS_PARALLELISM_CALLS = frozenset(
    {
        "multiprocessing.Pool",
        "multiprocessing.Process",
        "multiprocessing.get_context",
        "multiprocessing.set_start_method",
        "multiprocessing.pool.Pool",
        "concurrent.futures.ProcessPoolExecutor",
    }
)

#: Raw fork primitives: banned everywhere, no allowlist.
FORK_CALLS = frozenset({"os.fork", "os.forkpty", "pty.fork"})

#: ``get_context``/``set_start_method`` arguments that fork the parent.
FORK_START_METHODS = frozenset({"fork", "forkserver"})


class ProcessParallelismRule(Rule):
    """REPRO404: process parallelism only via ``repro.parallel``, never fork."""

    code = "REPRO404"
    name = "ad-hoc-process-parallelism"
    rationale = (
        "A forked child inherits the parent's RNG registry and engine state "
        "mid-run, so results depend on *when* the fork happened -- fork and "
        "fork-context multiprocessing are banned outright. Spawn-context "
        "process parallelism is sanctioned only inside `repro.parallel`, "
        "which shards by cell and merges deterministically; ad-hoc "
        "Pool/Process elsewhere bypasses the window-barrier protocol and "
        "the per-shard stream naming that make runs worker-count-invariant."
    )
    scopes = frozenset({"src", "tests", "benchmarks", "examples"})

    #: Path fragments where spawn-context multiprocessing is the point.
    _sanctioned_fragments = ("repro/parallel/", "tests/parallel/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        norm = ctx.path.replace("\\", "/")
        sanctioned = any(f in norm for f in self._sanctioned_fragments)
        for node, target in _call_targets(ctx):
            if target in FORK_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"`{target}()` forks the interpreter, inheriting RNG "
                    "registry state mid-run; use spawn-context workers via "
                    "`repro.parallel`",
                )
                continue
            if target not in PROCESS_PARALLELISM_CALLS:
                continue
            method = self._start_method_literal(node)
            if method in FORK_START_METHODS:
                yield self.violation(
                    ctx,
                    node,
                    f"`{target}({method!r})` selects a fork-based start "
                    "method; forked children inherit parent RNG state -- "
                    "only `\"spawn\"` is deterministic across platforms",
                )
            elif not sanctioned:
                yield self.violation(
                    ctx,
                    node,
                    f"ad-hoc process parallelism `{target}()` outside "
                    "`repro.parallel`; shard through "
                    "`repro.parallel.ShardedScaleScenario` so results stay "
                    "worker-count-invariant",
                )

    @staticmethod
    def _start_method_literal(node: ast.Call) -> str | None:
        candidates: list[ast.expr] = list(node.args[:1])
        candidates.extend(
            kw.value for kw in node.keywords if kw.arg == "method"
        )
        for expr in candidates:
            if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
                return expr.value
        return None


#: Methods that consume *simulated* durations/instants on the engine or
#: its events: feeding a wall-clock-derived value into any of these
#: couples the virtual timeline to the host machine.
SIM_SCHEDULE_METHODS = frozenset(
    {"schedule_at", "timeout", "drain_window", "schedule"}
)


class WallClockTaintRule(Rule):
    """REPRO521: wall-clock values must not reach sim-time arithmetic."""

    code = "REPRO521"
    name = "wall-clock-taint"
    rationale = (
        "A wall-clock reading that flows into `engine.timeout(...)`/"
        "`schedule_at(...)` or is mixed with `engine.now` couples the "
        "virtual timeline to the host machine -- the run is no longer a "
        "function of (scenario, seed). Unlike REPRO101 (which bans the "
        "*read* in library code), this intraprocedural dataflow check "
        "follows the value, so it also guards the dual-clock seams and "
        "the test/benchmark harnesses where wall-clock reads are legal "
        "but must stay on the wall side of the ledger."
    )
    scopes = frozenset({"src", "tests", "benchmarks", "examples"})
    allow_suffixes = (
        "repro/obs/trace.py",  # dual-clock spans keep the two ledgers apart
        "repro/cfd/solver.py",  # wall-time perf probe (separate channel)
        "repro/parallel/worker.py",  # shard compute-wall side channel
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        tainted: set[str] = set()
        reported: set[tuple[int, int]] = set()

        def is_wall_call(node: ast.AST) -> bool:
            return (
                isinstance(node, ast.Call)
                and ctx.imports.resolve(node.func) in WALL_CLOCK_CALLS
            )

        def expr_tainted(expr: ast.expr) -> bool:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name) and sub.id in tainted:
                    return True
                if is_wall_call(sub):
                    return True
            return False

        def now_reads(expr: ast.expr) -> bool:
            """Does ``expr`` read the sim clock (a bare ``.now`` access)?"""
            call_funcs = {
                id(sub.func) for sub in ast.walk(expr)
                if isinstance(sub, ast.Call)
            }
            return any(
                isinstance(sub, ast.Attribute)
                and sub.attr == "now"
                and id(sub) not in call_funcs
                for sub in ast.walk(expr)
            )

        def emit(node: ast.AST, message: str) -> Iterator[Violation]:
            key = (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
            if key not in reported:
                reported.add(key)
                yield self.violation(ctx, node, message)

        def scan_expr(expr: ast.expr) -> Iterator[Violation]:
            for sub in ast.walk(expr):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in SIM_SCHEDULE_METHODS
                ):
                    args = [*sub.args, *(kw.value for kw in sub.keywords)]
                    if any(expr_tainted(a) for a in args):
                        yield from emit(
                            sub,
                            "wall-clock-derived value flows into "
                            f"`.{sub.func.attr}(...)`: simulated time would "
                            "depend on the host machine; keep wall readings "
                            "on the wall side of the dual-clock ledger",
                        )
                elif isinstance(sub, (ast.BinOp, ast.Compare)):
                    if isinstance(sub, ast.BinOp):
                        sides = [sub.left, sub.right]
                    else:
                        sides = [sub.left, *sub.comparators]
                    if any(expr_tainted(s) for s in sides) and any(
                        now_reads(s) for s in sides
                    ):
                        yield from emit(
                            sub,
                            "wall-clock-derived value mixed with the sim "
                            "clock (`.now`) in one expression; the two "
                            "timelines must never meet in arithmetic",
                        )

        def handle(stmts: Sequence[ast.stmt]) -> Iterator[Violation]:
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue  # nested defs get their own fresh walk
                for expr in ast.iter_child_nodes(stmt):
                    if isinstance(expr, ast.expr):
                        yield from scan_expr(expr)
                if isinstance(stmt, ast.Assign):
                    if expr_tainted(stmt.value):
                        for target in stmt.targets:
                            for sub in ast.walk(target):
                                if isinstance(sub, ast.Name):
                                    tainted.add(sub.id)
                    else:
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                tainted.discard(target.id)
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    if isinstance(stmt.target, ast.Name):
                        if expr_tainted(stmt.value):
                            tainted.add(stmt.target.id)
                        else:
                            tainted.discard(stmt.target.id)
                elif isinstance(stmt, ast.AugAssign):
                    if expr_tainted(stmt.value) and isinstance(
                        stmt.target, ast.Name
                    ):
                        tainted.add(stmt.target.id)
                # Recurse into compound statements; loop bodies run twice
                # so loop-carried taint propagates to the first pass's
                # expressions on the second.
                if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                    yield from handle(stmt.body)
                    yield from handle(stmt.body)
                    yield from handle(stmt.orelse)
                elif isinstance(stmt, ast.If):
                    yield from handle(stmt.body)
                    yield from handle(stmt.orelse)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    yield from handle(stmt.body)
                elif isinstance(stmt, ast.Try):
                    yield from handle(stmt.body)
                    for handler in stmt.handlers:
                        yield from handle(handler.body)
                    yield from handle(stmt.orelse)
                    yield from handle(stmt.finalbody)

        yield from handle(func.body)


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


#: The registry, in catalog order. Codes must be unique.
ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    RngConstructionRule(),
    GlobalRandomRule(),
    UnseededRngRule(),
    RngDefaultArgRule(),
    HashSeedRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    BareExceptRule(),
    BlockingHandlerRule(),
    ProcessParallelismRule(),
    WallClockTaintRule(),
)

RULES_BY_CODE: dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}
if len(RULES_BY_CODE) != len(ALL_RULES):  # pragma: no cover - registry bug
    raise RuntimeError("duplicate rule codes in ALL_RULES")
