"""Checked-in violation baseline: grandfather known debt, block new debt.

Format is line-oriented text so the file diffs and reviews like code::

    # repro.lint baseline -- one entry per grandfathered violation.
    REPRO101 0123456789abcdef src/repro/foo.py  # justification

An entry matches any current violation with the same fingerprint (code +
file basename + offending line text -- see ``Violation.fingerprint``), so
baselined lines survive unrelated edits *and* directory moves, but are
invalidated the moment the offending line itself changes. The ``path``
field on each entry is informational (where the violation lived when it
was grandfathered).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.lint.violations import Violation


@dataclass(frozen=True)
class BaselineEntry:
    code: str
    fingerprint: str
    path: str
    justification: str = ""

    def format(self) -> str:
        line = f"{self.code} {self.fingerprint} {self.path}"
        if self.justification:
            line += f"  # {self.justification}"
        return line


class Baseline:
    """A set of grandfathered violation fingerprints."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: list[BaselineEntry] = list(entries)
        self._fingerprints: frozenset[str] = frozenset(
            e.fingerprint for e in self.entries
        )

    def __len__(self) -> int:
        return len(self.entries)

    def contains(self, violation: Violation) -> bool:
        return violation.fingerprint() in self._fingerprints

    def stale_entries(self, violations: Iterable[Violation]) -> list[BaselineEntry]:
        """Entries whose violation no longer exists (candidates to prune)."""
        live = {v.fingerprint() for v in violations}
        return [e for e in self.entries if e.fingerprint not in live]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        entries: list[BaselineEntry] = []
        for raw in path.read_text(encoding="utf-8").splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            body, _, comment = line.partition("#")
            fields = body.split()
            if len(fields) != 3:
                raise ValueError(f"malformed baseline line: {raw!r}")
            code, fingerprint, vpath = fields
            entries.append(
                BaselineEntry(
                    code=code,
                    fingerprint=fingerprint,
                    path=vpath,
                    justification=comment.strip(),
                )
            )
        return cls(entries)

    #: Justification stamped on freshly baselined entries unless the
    #: caller provides one (``--justification`` on the CLI).
    DEFAULT_JUSTIFICATION = "baselined, needs triage"

    @classmethod
    def from_violations(
        cls,
        violations: Iterable[Violation],
        justification: str | None = None,
    ) -> "Baseline":
        note = (
            justification if justification is not None
            else cls.DEFAULT_JUSTIFICATION
        )
        entries = [
            BaselineEntry(
                code=v.code,
                fingerprint=v.fingerprint(),
                path=v.path,
                justification=note,
            )
            for v in sorted(set(violations))
        ]
        return cls(entries)

    def dump(self, path: Path) -> None:
        header = (
            "# repro.lint baseline -- grandfathered violations.\n"
            "# Each line: CODE FINGERPRINT PATH  # justification\n"
            "# Entries are matched by fingerprint (code + path + offending\n"
            "# line text); editing the offending line invalidates the entry.\n"
            "# Keep this file empty: fix or justify, never accumulate.\n"
        )
        body = "".join(e.format() + "\n" for e in self.entries)
        path.write_text(header + body, encoding="utf-8")
