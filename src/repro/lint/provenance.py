"""RNG stream provenance: resolve every draw site to its namespace.

The determinism contract says a subsystem's randomness is a function of
``(master seed, stream name)``. That only holds if stream names are
globally coordinated: two subsystems sharing a name draw *correlated*
randomness, and a stream drawn outside its owning package couples
modules the architecture says are independent. This pass checks the
contract statically:

* Every ``engine.rng(...)`` / ``RngRegistry.get(...)`` call site is
  resolved to a **name template** -- string literals, registry constants
  and helper calls (``cell_stream(prefix, c, "gain")``) are folded;
  anything dynamic becomes a ``<placeholder>`` wildcard.
* Templates are matched against the union of every ``STREAM_NAMESPACES``
  table in the scanned tree (:mod:`repro.simkernel.streams` in the real
  repo; lint fixtures declare their own).

Rules emitted (program scope -- they need the whole graph):

========== ==============================================================
REPRO501   two declared namespaces overlap (collision by construction)
REPRO502   library code draws a stream owned by a different package
REPRO503   a declared namespace no call site ever draws (dead registry)
REPRO504   a library draw site matching no declared namespace
========== ==============================================================

Resolution is deliberately *optimistic* about parameters: a parameter or
dataclass field with a string default resolves to that default, so the
pass sees the canonical layout; callers overriding prefixes (tests build
scratch namespaces) are out of contract by design and exempt via scope.
"""

from __future__ import annotations

import re
from typing import Any, Iterator

from repro.lint.graph import ModuleSummary, NamespaceDecl, ProgramGraph
from repro.lint.violations import Violation

#: ``<placeholder>`` segments in patterns and resolved templates.
_PLACEHOLDER_RE = re.compile(r"<[^<>]+>")

#: Probe byte: stands in for "some dot-free text" when a template with
#: placeholders is matched against a pattern's regex.
_PROBE = "\x01"


def pattern_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a namespace pattern: placeholders match one dot-free run."""
    out: list[str] = []
    pos = 0
    for match in _PLACEHOLDER_RE.finditer(pattern):
        out.append(re.escape(pattern[pos:match.start()]))
        out.append(r"[^.]+")
        pos = match.end()
    out.append(re.escape(pattern[pos:]))
    return re.compile("".join(out))


def _probe(template: str) -> str:
    return _PLACEHOLDER_RE.sub(_PROBE, template)


def template_matches(template: str, pattern: str) -> bool:
    """Approximate intersection test between two placeholder strings.

    True when the languages could overlap: the pattern's regex accepts
    the template with placeholders collapsed to a probe byte, or vice
    versa. Exact for the placeholder grammar used here (one dot-free run
    per placeholder).
    """
    if pattern_regex(pattern).fullmatch(_probe(template)):
        return True
    return bool(pattern_regex(template).fullmatch(_probe(pattern)))


def resolve_template(
    ir: dict[str, Any],
    mod: ModuleSummary,
    graph: ProgramGraph,
    subst: dict[str, str] | None = None,
    depth: int = 0,
) -> str | None:
    """Fold a call-site IR into a name template with ``<x>`` wildcards.

    Returns None when nothing meaningful can be said (e.g. the registry's
    own pass-through ``self.rngs.get(name)`` resolves to a bare
    placeholder).
    """
    if depth > 12:
        return None
    kind = ir.get("k")
    if kind == "str":
        return str(ir["v"])
    if kind == "fstr":
        parts = []
        for part in ir["parts"]:
            resolved = resolve_template(part, mod, graph, subst, depth + 1)
            parts.append(resolved if resolved is not None else "<expr>")
        return "".join(parts)
    if kind == "name":
        value = graph.resolve_constant(ir["v"], mod)
        if value is not None:
            return value
        tail = str(ir["v"]).rsplit(".", 1)[-1]
        return f"<{tail}>"
    if kind == "param":
        name = ir["v"]
        if subst is not None and name in subst:
            return subst[name]
        if ir.get("default") is not None:
            return str(ir["default"])
        return f"<{name}>"
    if kind == "self":
        cls = mod.classes.get(ir.get("cls", ""))
        if cls is not None and ir["v"] in cls.str_defaults:
            return cls.str_defaults[ir["v"]]
        return f"<{ir['v']}>"
    if kind == "call":
        return _resolve_call(ir, mod, graph, subst, depth)
    if kind == "opaque":
        return f"<{ir.get('v', 'expr')}>"
    return None


def _resolve_call(
    ir: dict[str, Any],
    mod: ModuleSummary,
    graph: ProgramGraph,
    subst: dict[str, str] | None,
    depth: int,
) -> str | None:
    fn = ir["fn"]
    if "." not in fn:
        # A bare local/imported name: qualify through the module's own
        # import table (locals qualify as <module>.<fn>).
        fn = mod.imports.get(fn, f"{mod.module}.{fn}")
    located = graph.resolve_function(fn)
    if located is None:
        return None
    callee_mod, func = located
    bound: dict[str, str] = {}
    for pos, arg_ir in enumerate(ir.get("args", [])):
        if pos >= len(func.params):
            break
        resolved = resolve_template(arg_ir, mod, graph, subst, depth + 1)
        bound[func.params[pos]] = (
            resolved if resolved is not None else f"<{func.params[pos]}>"
        )
    for name, arg_ir in ir.get("kwargs", {}).items():
        resolved = resolve_template(arg_ir, mod, graph, subst, depth + 1)
        bound[name] = resolved if resolved is not None else f"<{name}>"
    for param in func.params:
        if param not in bound:
            default = func.defaults.get(param)
            bound[param] = default if default is not None else f"<{param}>"
    if func.returns is None:
        return None
    return resolve_template(func.returns, callee_mod, graph, bound, depth + 1)


def informative(template: str) -> bool:
    """A template worth matching: some literal alphanumeric content."""
    literal = _PLACEHOLDER_RE.sub("", template)
    return any(ch.isalnum() for ch in literal)


def owner_contains(owner: str, module: str) -> bool:
    return module == owner or module.startswith(owner + ".")


def _violation(
    mod: ModuleSummary, line: int, col: int, code: str, message: str
) -> Violation:
    return Violation(
        path=mod.path,
        line=line,
        col=col,
        code=code,
        message=message,
        line_text=mod.line_text(line),
    )


class ResolvedSite:
    """One draw site with its resolved template and namespace matches."""

    __slots__ = ("mod", "line", "col", "method", "template", "matches")

    def __init__(
        self,
        mod: ModuleSummary,
        line: int,
        col: int,
        method: str,
        template: str,
        matches: list[NamespaceDecl],
    ) -> None:
        self.mod = mod
        self.line = line
        self.col = col
        self.method = method
        self.template = template
        self.matches = matches


def resolve_sites(graph: ProgramGraph) -> list[ResolvedSite]:
    """Every informative draw site, resolved and namespace-attributed."""
    namespaces = [decl for _, decl in graph.all_namespaces()]
    sites: list[ResolvedSite] = []
    for name in sorted(graph.modules):
        mod = graph.modules[name]
        for site in mod.call_sites:
            template = resolve_template(site.arg, mod, graph)
            if template is None or not informative(template):
                continue
            matches = [
                decl
                for decl in namespaces
                if template_matches(template, decl.pattern)
            ]
            sites.append(
                ResolvedSite(
                    mod, site.line, site.col, site.method, template, matches
                )
            )
    return sites


def check_collisions(graph: ProgramGraph) -> Iterator[Violation]:
    """REPRO501: declared namespaces whose patterns overlap."""
    declared = graph.all_namespaces()
    for i, (mod_a, a) in enumerate(declared):
        for mod_b, b in declared[i + 1:]:
            if not template_matches(a.pattern, b.pattern):
                continue
            yield _violation(
                mod_b,
                b.line,
                0,
                "REPRO501",
                f"stream namespace `{b.pattern}` (owner {b.owner}) overlaps "
                f"`{a.pattern}` (owner {a.owner}, {mod_a.path}:{a.line}); "
                "overlapping namespaces draw correlated randomness -- "
                "disambiguate the patterns",
            )


def check_foreign_draws(sites: list[ResolvedSite]) -> Iterator[Violation]:
    """REPRO502: src code drawing a stream owned by another package."""
    for site in sites:
        if site.mod.scope != "src" or not site.matches:
            continue
        owned = [d for d in site.matches if d.owner]
        if not owned:
            continue
        if any(owner_contains(d.owner, site.mod.module) for d in owned):
            continue
        owners = ", ".join(sorted({d.owner for d in owned}))
        yield _violation(
            site.mod,
            site.line,
            site.col,
            "REPRO502",
            f"stream `{site.template}` is owned by {owners} but drawn from "
            f"`{site.mod.module}`; draw it through a helper in the owning "
            "package so the subsystem keeps sole custody of its stream",
        )


def check_dead_namespaces(
    graph: ProgramGraph, sites: list[ResolvedSite]
) -> Iterator[Violation]:
    """REPRO503: declared namespaces nothing draws."""
    used: set[tuple[str, str]] = set()
    for site in sites:
        for decl in site.matches:
            used.add((decl.pattern, decl.owner))
    for mod, decl in graph.all_namespaces():
        if (decl.pattern, decl.owner) in used:
            continue
        yield _violation(
            mod,
            decl.line,
            0,
            "REPRO503",
            f"stream namespace `{decl.pattern}` has no matching draw site "
            "anywhere in the scanned tree; delete the declaration or wire "
            "up the consumer",
        )


def check_unregistered(sites: list[ResolvedSite]) -> Iterator[Violation]:
    """REPRO504: src draw sites outside every declared namespace."""
    for site in sites:
        if site.mod.scope != "src" or site.matches:
            continue
        yield _violation(
            site.mod,
            site.line,
            site.col,
            "REPRO504",
            f"stream `{site.template}` matches no declared namespace; "
            "declare it in `repro.simkernel.streams.STREAM_NAMESPACES` "
            "(and build the name via a registry constant/helper)",
        )


# -- registry page rendering --------------------------------------------------

REGISTRY_HEADER = """\
# RNG stream registry

<!-- GENERATED FILE -- do not edit by hand.
     Regenerate: python -m repro.lint --program src tests benchmarks \\
         --emit-stream-registry docs/rng-streams.md
     CI checks this page against the code (--check-stream-registry). -->

Every named RNG stream the fabric draws, generated from
`repro.simkernel.streams.STREAM_NAMESPACES` and the whole-program
provenance pass (`python -m repro.lint --program`). A stream's draws are
a function of `(master seed, stream name)` alone; the owner column names
the only package whose library code may draw it (REPRO502).
"""


def render_stream_registry(
    graph: ProgramGraph, sites: list[ResolvedSite] | None = None
) -> str:
    """The committed ``docs/rng-streams.md`` page, deterministically."""
    if sites is None:
        sites = resolve_sites(graph)
    lines: list[str] = [REGISTRY_HEADER]
    lines.append("| Namespace | Owner | Description |")
    lines.append("| --- | --- | --- |")
    declared = sorted(
        graph.all_namespaces(), key=lambda pair: pair[1].pattern
    )
    for _, decl in declared:
        pattern = decl.pattern.replace("|", "\\|")
        lines.append(
            f"| `{pattern}` | `{decl.owner}` | {decl.description} |"
        )
    lines.append("")
    lines.append("## Draw sites")
    lines.append("")
    lines.append(
        "Library (`src`) call sites per namespace, as resolved by the"
    )
    lines.append(
        "provenance pass (templates show `<placeholder>` wildcards for"
    )
    lines.append("runtime-varying segments):")
    lines.append("")
    for _, decl in declared:
        drawers: dict[str, set[str]] = {}
        for site in sites:
            if site.mod.scope != "src":
                continue
            if any(
                d.pattern == decl.pattern and d.owner == decl.owner
                for d in site.matches
            ):
                drawers.setdefault(site.mod.path, set()).add(site.template)
        lines.append(f"### `{decl.pattern}`")
        lines.append("")
        if not drawers:
            lines.append("- (no library draw sites)")
        else:
            for path in sorted(drawers):
                templates = ", ".join(
                    f"`{t}`" for t in sorted(drawers[path])
                )
                lines.append(f"- `{path}` — {templates}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
