"""Command line interface: ``python -m repro.lint src tests benchmarks``.

Exit codes: 0 clean (or fully baselined), 1 violations found, 2 bad usage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.analyzer import lint_paths, select_rules
from repro.lint.baseline import Baseline
from repro.lint.rules import ALL_RULES

#: Default baseline location, relative to the invocation directory.
DEFAULT_BASELINE = Path("repro-lint.baseline")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism and simulation-safety analyzer for the "
            "xGFabric reproduction. Suppress a single line with "
            "`# repro-lint: disable=CODE[,CODE...]`."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src"), Path("tests"), Path("benchmarks")],
        help="files or directories to scan (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current violations to the baseline file and exit 0",
    )
    parser.add_argument(
        "--justification",
        metavar="TEXT",
        help=(
            "justification comment stamped on entries written by "
            f"--write-baseline (default: {Baseline.DEFAULT_JUSTIFICATION!r})"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every violation, ignoring the baseline file",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a per-code violation count summary",
    )
    return parser


def _list_rules() -> int:
    for rule in ALL_RULES:
        scopes = ",".join(sorted(rule.scopes))
        print(f"{rule.code}  {rule.name}  [scopes: {scopes}]")
        print(f"    {rule.rationale}")
        if rule.allow_suffixes:
            print(f"    allowlisted: {', '.join(rule.allow_suffixes)}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    try:
        rules = select_rules(
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else (),
        )
    except ValueError as exc:
        parser.error(str(exc))  # exits 2

    missing = [p for p in args.paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(str(p) for p in missing)}")

    if args.justification is not None and not args.write_baseline:
        parser.error("--justification only makes sense with --write-baseline")

    violations = lint_paths(args.paths, rules=rules)

    if args.write_baseline:
        Baseline.from_violations(
            violations, justification=args.justification
        ).dump(args.baseline)
        print(
            f"wrote {len(violations)} entr{'y' if len(violations) == 1 else 'ies'} "
            f"to {args.baseline}"
        )
        return 0

    baseline = (
        Baseline() if args.no_baseline else Baseline.load(args.baseline)
    )
    fresh = [v for v in violations if not baseline.contains(v)]
    baselined = len(violations) - len(fresh)

    for violation in fresh:
        print(violation.format())

    if args.statistics and fresh:
        print()
        counts: dict[str, int] = {}
        for violation in fresh:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        for code in sorted(counts):
            print(f"{code}: {counts[code]}")

    stale = baseline.stale_entries(violations)
    if stale:
        print(
            f"note: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer match anything "
            f"(prune from {args.baseline}):",
            file=sys.stderr,
        )
        for entry in stale:
            print(f"  {entry.format()}", file=sys.stderr)

    if fresh:
        suffix = f" ({baselined} baselined)" if baselined else ""
        print(
            f"\nfound {len(fresh)} violation{'s' if len(fresh) != 1 else ''}"
            f"{suffix}",
            file=sys.stderr,
        )
        return 1
    if baselined:
        print(f"clean ({baselined} baselined)", file=sys.stderr)
    return 0
