"""Command line interface: ``python -m repro.lint src tests benchmarks``.

Exit codes: 0 clean (or fully baselined), 1 violations found (or stream
registry drift under ``--check-stream-registry``), 2 bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.analyzer import lint_paths, select_rules
from repro.lint.baseline import Baseline
from repro.lint.program import (
    PROGRAM_RULES,
    PROGRAM_RULES_BY_CODE,
    analyze_program,
    select_program_rules,
)
from repro.lint.provenance import render_stream_registry, resolve_sites
from repro.lint.rules import ALL_RULES
from repro.lint.violations import Violation

#: Default baseline location, relative to the invocation directory.
DEFAULT_BASELINE = Path("repro-lint.baseline")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism and simulation-safety analyzer for the "
            "xGFabric reproduction. Suppress a single line with "
            "`# repro-lint: disable=CODE[,CODE...]`."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src"), Path("tests"), Path("benchmarks")],
        help="files or directories to scan (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help=(
            "additionally build the whole-program graph and run the "
            "cross-module REPRO5xx passes (stream provenance, shard purity)"
        ),
    )
    parser.add_argument(
        "--cache",
        type=Path,
        metavar="PATH",
        help=(
            "per-file summary cache for --program (JSON; entries keyed by "
            "content hash, so it is safe to persist across revisions)"
        ),
    )
    parser.add_argument(
        "--emit-stream-registry",
        type=Path,
        metavar="PATH",
        help=(
            "write the generated RNG stream registry page to PATH "
            "(implies building the program graph)"
        ),
    )
    parser.add_argument(
        "--check-stream-registry",
        type=Path,
        metavar="PATH",
        help=(
            "fail (exit 1) if PATH differs from the regenerated RNG "
            "stream registry page (implies building the program graph)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current violations to the baseline file and exit 0",
    )
    parser.add_argument(
        "--justification",
        metavar="TEXT",
        help=(
            "justification comment stamped on entries written by "
            f"--write-baseline (default: {Baseline.DEFAULT_JUSTIFICATION!r})"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every violation, ignoring the baseline file",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a per-code violation count summary",
    )
    return parser


def _list_rules() -> int:
    for rule in ALL_RULES:
        scopes = ",".join(sorted(rule.scopes))
        print(f"{rule.code}  {rule.name}  [scopes: {scopes}]")
        print(f"    {rule.rationale}")
        if rule.allow_suffixes:
            print(f"    allowlisted: {', '.join(rule.allow_suffixes)}")
    for prule in PROGRAM_RULES:
        print(f"{prule.code}  {prule.name}  [whole-program]")
        print(f"    {prule.rationale}")
    return 0


def _violation_json(violation: Violation) -> dict[str, object]:
    return {
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "code": violation.code,
        "message": violation.message,
        "line_text": violation.line_text,
        "fingerprint": violation.fingerprint(),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else ()
    try:
        rules = select_rules(
            select=select,
            ignore=ignore,
            extra_known=PROGRAM_RULES_BY_CODE,
        )
    except ValueError as exc:
        parser.error(str(exc))  # exits 2

    missing = [p for p in args.paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(str(p) for p in missing)}")

    if args.justification is not None and not args.write_baseline:
        parser.error("--justification only makes sense with --write-baseline")
    if args.cache is not None and not (
        args.program
        or args.emit_stream_registry
        or args.check_stream_registry
    ):
        parser.error("--cache only makes sense with --program")

    need_graph = bool(
        args.program or args.emit_stream_registry or args.check_stream_registry
    )

    violations = lint_paths(args.paths, rules=rules)
    registry_page: str | None = None
    if need_graph:
        program_rules = (
            select_program_rules(select, ignore) if args.program else ()
        )
        program_violations, graph = analyze_program(
            args.paths, cache_path=args.cache, rules=program_rules
        )
        violations = sorted(set(violations) | set(program_violations))
        registry_page = render_stream_registry(graph, resolve_sites(graph))

    if args.emit_stream_registry is not None and registry_page is not None:
        args.emit_stream_registry.write_text(registry_page, encoding="utf-8")
        print(
            f"wrote stream registry to {args.emit_stream_registry}",
            file=sys.stderr,
        )

    registry_drift = False
    if args.check_stream_registry is not None and registry_page is not None:
        committed = (
            args.check_stream_registry.read_text(encoding="utf-8")
            if args.check_stream_registry.exists()
            else None
        )
        if committed != registry_page:
            registry_drift = True
            print(
                f"{args.check_stream_registry} is out of date; regenerate "
                "with `python -m repro.lint --emit-stream-registry "
                f"{args.check_stream_registry} <paths>`",
                file=sys.stderr,
            )

    if args.write_baseline:
        Baseline.from_violations(
            violations, justification=args.justification
        ).dump(args.baseline)
        print(
            f"wrote {len(violations)} entr{'y' if len(violations) == 1 else 'ies'} "
            f"to {args.baseline}"
        )
        return 0

    baseline = (
        Baseline() if args.no_baseline else Baseline.load(args.baseline)
    )
    fresh = [v for v in violations if not baseline.contains(v)]
    baselined = len(violations) - len(fresh)
    stale = baseline.stale_entries(violations)

    if args.format == "json":
        # One finding per line (JSON Lines) so CI can stream annotations;
        # summary/stale/drift notes stay on stderr, status in the exit code.
        for violation in fresh:
            print(json.dumps(_violation_json(violation), sort_keys=True))
        for entry in stale:
            print(
                f"note: stale baseline entry: {entry.format()}",
                file=sys.stderr,
            )
        return 1 if (fresh or registry_drift) else 0

    for violation in fresh:
        print(violation.format())

    if args.statistics and fresh:
        print()
        counts: dict[str, int] = {}
        for violation in fresh:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        for code in sorted(counts):
            print(f"{code}: {counts[code]}")

    if stale:
        print(
            f"note: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer match anything "
            f"(prune from {args.baseline}):",
            file=sys.stderr,
        )
        for entry in stale:
            print(f"  {entry.format()}", file=sys.stderr)

    if fresh:
        suffix = f" ({baselined} baselined)" if baselined else ""
        print(
            f"\nfound {len(fresh)} violation{'s' if len(fresh) != 1 else ''}"
            f"{suffix}",
            file=sys.stderr,
        )
        return 1
    if registry_drift:
        return 1
    if baselined:
        print(f"clean ({baselined} baselined)", file=sys.stderr)
    return 0
