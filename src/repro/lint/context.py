"""Per-file analysis context: source, scope, imports, suppressions.

The context is built once per file and shared by every rule, so the
import-resolution and comment-scanning passes run once, not per rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import PurePosixPath

#: File scopes the rules target. ``src`` is library code (the simulation
#: itself); ``tests``/``benchmarks``/``examples`` are harness code where a
#: different (looser) subset of the invariants applies.
SCOPES = ("src", "tests", "benchmarks", "examples")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
)


def classify_scope(path: str) -> str:
    """Classify a file path into one of :data:`SCOPES` by its directories."""
    parts = PurePosixPath(path.replace("\\", "/")).parts
    for scope in ("tests", "benchmarks", "examples"):
        if scope in parts:
            return scope
    return "src"


def _parse_suppressions(source: str) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Extract ``# repro-lint: disable=...`` comments.

    Returns ``(per_line, file_wide)`` where ``per_line`` maps a 1-based line
    number to the codes disabled on that line (``*`` disables every rule)
    and ``file_wide`` holds codes from ``disable-file=`` comments anywhere
    in the file.
    """
    per_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = frozenset(
                c.strip().upper() if c.strip() != "*" else "*"
                for c in match.group("codes").split(",")
            )
            if match.group(1) == "disable-file":
                file_wide.update(codes)
            else:
                line = tok.start[0]
                per_line[line] = per_line.get(line, frozenset()) | codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files surface as REPRO000 from the analyzer instead.
        pass
    return per_line, frozenset(file_wide)


class ImportTable:
    """Maps local names to the qualified module paths they were bound from.

    Built from every ``import``/``from ... import`` statement in the module
    (at any nesting level), then used to canonicalise call targets:
    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    whether numpy was imported as ``np``, ``numpy``, or via
    ``from numpy.random import default_rng``.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._names[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds the top-level name ``a``.
                        top = alias.name.split(".", 1)[0]
                        self._names[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never hit the banned sets
                for alias in node.names:
                    local = alias.asname if alias.asname is not None else alias.name
                    self._names[local] = f"{node.module}.{alias.name}"

    def as_dict(self) -> dict[str, str]:
        """Local name -> qualified origin, for program-graph summaries."""
        return dict(self._names)

    def resolve(self, expr: ast.expr) -> str | None:
        """Qualified dotted name of ``expr``, or None if not name-like.

        Bare names that were never imported resolve to themselves, so
        builtins (``open``, ``hash``, ``input``) keep their plain name.
        """
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = self._names.get(parts[0], parts[0])
        return ".".join([root, *parts[1:]])


@dataclass
class FileContext:
    """Everything a rule needs to analyse one file."""

    path: str
    source: str
    tree: ast.Module
    scope: str
    imports: ImportTable
    lines: list[str] = field(default_factory=list)
    _suppress_lines: dict[int, frozenset[str]] = field(default_factory=dict)
    _suppress_file: frozenset[str] = frozenset()

    @classmethod
    def build(cls, path: str, source: str, scope: str | None = None) -> "FileContext":
        """Parse ``source`` and build the shared per-file context.

        Raises ``SyntaxError`` if the file does not parse; the analyzer
        converts that into a REPRO000 violation.
        """
        tree = ast.parse(source, filename=path)
        per_line, file_wide = _parse_suppressions(source)
        return cls(
            path=path,
            source=source,
            tree=tree,
            scope=scope if scope is not None else classify_scope(path),
            imports=ImportTable(tree),
            lines=source.splitlines(),
            _suppress_lines=per_line,
            _suppress_file=file_wide,
        )

    def line_text(self, line: int) -> str:
        """Text of the 1-based ``line`` ('' if out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def suppressed(self, line: int, code: str) -> bool:
        """Is ``code`` disabled on ``line`` (or file-wide)?"""
        if "*" in self._suppress_file or code in self._suppress_file:
            return True
        codes = self._suppress_lines.get(line)
        if codes is None:
            return False
        return "*" in codes or code in codes
