"""Software modules and the visualization-portability logic of section 4.3.

"The primary portability challenge emerged from variations in pre-installed
software modules across the computing sites. Each HPC system provided
different versions of OpenFOAM and ParaView with distinct dependency
requirements ... Notre Dame and ANVIL systems utilized OpenGL-compiled
ParaView with X.Org display servers supporting virtual framebuffer
allocation, while Stampede3 employed Mesa-compiled ParaView. ANVIL's
configuration presented additional constraints, lacking support for both
virtual framebuffer and Mesa environment pass-through."

:func:`resolve_render_environment` encodes the decision procedure the
paper's scripts implement: prefer an X.Org virtual framebuffer, fall back to
Mesa off-screen rendering, and otherwise require the SSH display-forwarding
front-end solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class ModuleError(Exception):
    """Module not available / version conflict."""


class GlStack(Enum):
    """How a site's ParaView was compiled."""

    OPENGL_XORG = "opengl-xorg"   # hardware GL + X.Org display server
    OPENGL_BARE = "opengl-bare"   # hardware GL, no usable display machinery
    MESA = "mesa"                 # software rendering, no display needed


class RenderStrategy(Enum):
    """How VTK output gets rasterized on a given site."""

    XORG_FRAMEBUFFER = "xorg-virtual-framebuffer"
    MESA_OFFSCREEN = "mesa-offscreen"
    SSH_DISPLAY_FORWARD = "ssh-display-forward"


@dataclass(frozen=True)
class SoftwareModule:
    """One entry in a site's ``module avail`` listing."""

    name: str
    version: str
    depends_on: tuple[str, ...] = ()

    @property
    def key(self) -> str:
        return f"{self.name}/{self.version}"


@dataclass
class ModuleSystem:
    """A site's Lmod/Modules environment.

    Attributes
    ----------
    available:
        Modules installed at the site.
    gl_stack:
        The ParaView graphics configuration (drives render strategy).
    supports_virtual_framebuffer:
        Whether Xvfb-style allocation works (Anvil: no).
    supports_mesa_passthrough:
        Whether Mesa environment variables pass into batch jobs (Anvil: no).
    """

    available: list[SoftwareModule]
    gl_stack: GlStack = GlStack.OPENGL_XORG
    supports_virtual_framebuffer: bool = True
    supports_mesa_passthrough: bool = True
    _loaded: dict[str, SoftwareModule] = field(default_factory=dict)

    def avail(self, name: Optional[str] = None) -> list[SoftwareModule]:
        mods = self.available
        if name is not None:
            mods = [m for m in mods if m.name == name]
        return sorted(mods, key=lambda m: (m.name, m.version))

    def load(self, name: str, version: Optional[str] = None) -> SoftwareModule:
        """Load a module (and, recursively, its dependencies).

        Loading a second version of an already-loaded module is a conflict,
        like Lmod's default behaviour.
        """
        candidates = self.avail(name)
        if version is not None:
            candidates = [m for m in candidates if m.version == version]
        if not candidates:
            installed = [m.key for m in self.avail(name)] or "none"
            raise ModuleError(
                f"module {name}{'/' + version if version else ''} not "
                f"available (installed: {installed})"
            )
        module = candidates[-1]  # highest version wins, like Lmod default
        loaded = self._loaded.get(name)
        if loaded is not None:
            if loaded.version != module.version:
                raise ModuleError(
                    f"module conflict: {loaded.key} already loaded, "
                    f"cannot load {module.key}"
                )
            return loaded
        for dep in module.depends_on:
            dep_name, _, dep_version = dep.partition("/")
            self.load(dep_name, dep_version or None)
        self._loaded[name] = module
        return module

    def unload(self, name: str) -> None:
        if name not in self._loaded:
            raise ModuleError(f"module {name} is not loaded")
        del self._loaded[name]

    def loaded(self) -> list[str]:
        return sorted(m.key for m in self._loaded.values())

    def purge(self) -> None:
        self._loaded.clear()


def resolve_render_environment(modules: ModuleSystem) -> RenderStrategy:
    """Pick the rasterization strategy a site supports.

    Mirrors the paper's per-site outcomes: ND -> X.Org virtual framebuffer,
    Stampede3 -> Mesa off-screen, Anvil -> only the SSH display-forwarding
    front-end works.
    """
    if (
        modules.gl_stack is GlStack.OPENGL_XORG
        and modules.supports_virtual_framebuffer
    ):
        return RenderStrategy.XORG_FRAMEBUFFER
    if modules.gl_stack is GlStack.MESA and modules.supports_mesa_passthrough:
        return RenderStrategy.MESA_OFFSCREEN
    return RenderStrategy.SSH_DISPLAY_FORWARD
