"""HPC facility simulation: clusters, batch schedulers, sites.

Substitutes the paper's three facilities -- Notre Dame's Center for Research
Computing (UGE), Purdue's Anvil and TACC's Stampede3 (Slurm) -- with a
cluster model whose behaviours are the ones the evaluation depends on:

* batch queueing with FCFS + conservative backfill (queue delays "varied
  from zero to 24 hours", section 4.4);
* per-site software-module heterogeneity (OpenFOAM/ParaView versions and
  graphics stacks) driving the portability layer of section 4.3;
* node/core accounting that the pilot layer (:mod:`repro.pilot`) builds on.
"""

from repro.hpc.job import Job, JobState
from repro.hpc.schedulers import BackfillScheduler, FcfsScheduler, Scheduler
from repro.hpc.cluster import Cluster, SubmitError
from repro.hpc.modules import (
    ModuleError,
    ModuleSystem,
    RenderStrategy,
    SoftwareModule,
    resolve_render_environment,
)
from repro.hpc.site import BatchSystem, HpcSite, QueueLoadGenerator
from repro.hpc.sites import anvil, nd_crc, stampede3, all_sites
from repro.hpc.scripts import render_job_script, submit_command_line

__all__ = [
    "Job",
    "JobState",
    "Scheduler",
    "FcfsScheduler",
    "BackfillScheduler",
    "Cluster",
    "SubmitError",
    "SoftwareModule",
    "ModuleSystem",
    "ModuleError",
    "RenderStrategy",
    "resolve_render_environment",
    "BatchSystem",
    "HpcSite",
    "QueueLoadGenerator",
    "nd_crc",
    "anvil",
    "stampede3",
    "all_sites",
    "render_job_script",
    "submit_command_line",
]
