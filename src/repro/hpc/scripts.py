"""Batch job-script generation for the portability layer.

Section 4.3: "Anticipating these and future differences requires developing
scripts that perform various checks, resource allocation specifications,
and user prompts within the scripts for each computing environment, along
with the use of Miniconda to capture and deploy Python components."

:func:`render_job_script` produces a submittable script in the site's batch
dialect (UGE ``#$`` directives vs Slurm ``#SBATCH``), loading the site's
module stack, activating the pinned Miniconda environment, and selecting
the rendering strategy the site supports.
"""

from __future__ import annotations

from repro.hpc.job import Job
from repro.hpc.modules import RenderStrategy
from repro.hpc.site import BatchSystem, HpcSite


def _walltime_hms(walltime_s: float) -> str:
    total = int(walltime_s)
    return f"{total // 3600:02d}:{total % 3600 // 60:02d}:{total % 60:02d}"


def _uge_header(job: Job, site: HpcSite) -> list[str]:
    cores = job.nodes * site.cluster.cores_per_node
    return [
        "#$ -N " + job.name,
        f"#$ -pe smp {cores}",
        f"#$ -l h_rt={_walltime_hms(job.walltime_s)}",
        "#$ -q long",
        "#$ -j y",
    ]


def _slurm_header(job: Job, site: HpcSite) -> list[str]:
    return [
        f"#SBATCH --job-name={job.name}",
        f"#SBATCH --nodes={job.nodes}",
        f"#SBATCH --ntasks-per-node={site.cluster.cores_per_node}",
        f"#SBATCH --time={_walltime_hms(job.walltime_s)}",
        f"#SBATCH --partition={'wholenode' if site.name == 'anvil' else 'normal'}",
        "#SBATCH --output=%x-%j.out",
    ]


_RENDER_SETUP: dict[RenderStrategy, list[str]] = {
    RenderStrategy.XORG_FRAMEBUFFER: [
        "# X.Org virtual framebuffer for off-screen ParaView rendering",
        "Xvfb :99 -screen 0 1920x1080x24 &",
        "export DISPLAY=:99",
    ],
    RenderStrategy.MESA_OFFSCREEN: [
        "# Mesa-compiled ParaView renders off-screen without a display",
        "export MESA_GL_VERSION_OVERRIDE=3.3",
    ],
    RenderStrategy.SSH_DISPLAY_FORWARD: [
        "# This site supports neither Xvfb nor Mesa pass-through:",
        "# rendering must run on the front-end over an ssh -Y session.",
        "if [ -z \"$DISPLAY\" ]; then",
        "  echo 'ERROR: connect with ssh -Y and rerun rendering' >&2",
        "fi",
    ],
}


def render_job_script(
    job: Job,
    site: HpcSite,
    command: str = "sh runme.sh -t=$NSLOTS",
    conda_env: str = "xgfabric",
) -> str:
    """A submittable batch script for ``job`` on ``site``.

    The body is the same everywhere (the point of the portability layer);
    only the directive dialect, module versions and rendering setup vary.
    """
    if site.batch_system is BatchSystem.UGE:
        header = _uge_header(job, site)
    else:
        header = _slurm_header(job, site)
    site.setup_environment()
    module_lines = [f"module load {key}" for key in site.modules.loaded()]
    render_lines = _RENDER_SETUP[site.render_strategy()]
    lines = (
        ["#!/bin/bash", f"# generated for {site.name} "
         f"({site.batch_system.value})"]
        + header
        + [""]
        + module_lines
        + [
            "",
            "# Miniconda-pinned Python components (reproducible builds)",
            f"source activate {conda_env}",
            "",
        ]
        + render_lines
        + ["", command, ""]
    )
    return "\n".join(lines)


def submit_command_line(job_script_path: str, site: HpcSite) -> str:
    """The shell line a user would type to submit the script."""
    return f"{site.batch_system.submit_command} {job_script_path}"
