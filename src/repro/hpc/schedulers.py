"""Batch scheduling disciplines: FCFS and conservative backfill.

The scheduler answers one question each time the cluster state changes:
*which pending jobs start now?* FCFS starts the queue head whenever it fits
and nothing behind it otherwise. Conservative backfill additionally starts
later jobs out of order when -- by the requested walltimes -- doing so
cannot delay the head job's earliest possible start (the standard
EASY/conservative policy real UGE/Slurm deployments run).

Invariant (property-tested): the set of running jobs never needs more nodes
than the cluster has.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.hpc.job import Job


class Scheduler(ABC):
    """Scheduling discipline interface."""

    name: str = "abstract"

    @abstractmethod
    def select(
        self,
        pending: Sequence[Job],
        running: Sequence[Job],
        free_nodes: int,
        total_nodes: int,
        now: float,
    ) -> list[Job]:
        """Return the pending jobs to start now, in start order."""


class FcfsScheduler(Scheduler):
    """Strict first-come-first-served: the head blocks everything behind it."""

    name = "fcfs"

    def select(self, pending, running, free_nodes, total_nodes, now):
        started: list[Job] = []
        free = free_nodes
        for job in pending:
            if job.nodes > free:
                break  # strict: nothing may overtake the head
            started.append(job)
            free -= job.nodes
        return started


class BackfillScheduler(Scheduler):
    """Conservative backfill over FCFS.

    The head job reserves the earliest time enough nodes free up (using the
    *walltime* of running jobs); later jobs may start now only if they fit
    in the current free nodes and their walltime ends before the
    reservation (or they don't overlap the reserved nodes).
    """

    name = "backfill"

    def select(self, pending, running, free_nodes, total_nodes, now):
        started: list[Job] = []
        free = free_nodes
        queue = list(pending)

        # Start jobs FCFS while they fit.
        while queue and queue[0].nodes <= free:
            job = queue.pop(0)
            started.append(job)
            free -= job.nodes

        if not queue:
            return started

        head = queue[0]
        # Compute the head's reservation: when do enough nodes free up?
        # Walk running + just-started jobs by walltime expiry.
        events = sorted(
            (
                (job.start_time if job.start_time is not None else now)
                + job.walltime_s,
                job.nodes,
            )
            for job in list(running) + started
        )
        avail = free
        reservation_time = now
        for when, nodes in events:
            if avail >= head.nodes:
                break
            avail += nodes
            reservation_time = when
        if avail < head.nodes:
            # Head can never fit (validated at submit, so this means the
            # walltime bookkeeping is broken).
            raise RuntimeError(
                f"head job {head.name!r} wants {head.nodes} nodes on a "
                f"{total_nodes}-node cluster"
            )

        # Nodes free *at the reservation* that the head does not need may be
        # used indefinitely; the head's own nodes only until the reservation.
        spare_at_reservation = avail - head.nodes
        for job in queue[1:]:
            if job.nodes > free:
                continue
            ends_by = now + job.walltime_s
            if ends_by <= reservation_time or job.nodes <= spare_at_reservation:
                started.append(job)
                free -= job.nodes
                if not (ends_by <= reservation_time):
                    spare_at_reservation -= job.nodes
        return started
