"""HPC sites: cluster + batch-system skin + module environment + load.

A site wraps a :class:`~repro.hpc.cluster.Cluster` with the two things that
differ across the paper's facilities: the batch system dialect (UGE's
``qsub`` vs. Slurm's ``sbatch``) and the software-module environment.
:class:`QueueLoadGenerator` injects synthetic background jobs to produce the
queue-delay regimes of section 4.4 ("the queueing delay at Notre Dame varied
from zero to 24 hours at various points, and other facilities were no
different").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Generator

from repro.hpc.cluster import Cluster
from repro.hpc.job import Job
from repro.hpc.modules import ModuleSystem, RenderStrategy, resolve_render_environment
from repro.simkernel import Engine
from repro.simkernel.streams import hpc_background_load_stream


class BatchSystem(Enum):
    """Batch scheduler families seen across the three sites."""

    UGE = "uge"      # Univa/Altair Grid Engine (ND CRC; qsub)
    SLURM = "slurm"  # Anvil, Stampede3 (sbatch)

    @property
    def submit_command(self) -> str:
        return {"uge": "qsub", "slurm": "sbatch"}[self.value]


@dataclass
class HpcSite:
    """One facility."""

    name: str
    cluster: Cluster
    batch_system: BatchSystem
    modules: ModuleSystem

    @property
    def engine(self) -> Engine:
        return self.cluster.engine

    def submit(self, job: Job) -> Job:
        """Submit through the site's batch system (dialect is cosmetic --
        the point of the portability layer is that xGFabric code above this
        line never needs to know which dialect it is)."""
        return self.cluster.submit(job)

    def render_strategy(self) -> RenderStrategy:
        """How this site rasterizes OpenFOAM's VTK output (section 4.3)."""
        return resolve_render_environment(self.modules)

    def setup_environment(self) -> list[str]:
        """Load the simulation's software stack; returns loaded module keys.

        Raises :class:`~repro.hpc.modules.ModuleError` when a site lacks a
        requirement -- the check the paper's per-site scripts perform.
        """
        self.modules.purge()
        self.modules.load("openfoam")
        self.modules.load("paraview")
        self.modules.load("miniconda")
        return self.modules.loaded()


class QueueLoadGenerator:
    """Synthetic background load producing realistic queue delays.

    Jobs arrive as a Poisson process; node counts and runtimes are drawn so
    that offered load can be swept from "empty queue" (zero delay) to
    saturation (daylong delays).

    Parameters
    ----------
    site:
        Target site.
    arrival_rate_per_hour:
        Mean background-job arrival rate.
    mean_job_nodes / mean_job_hours:
        Job size and duration distribution means (geometric / exponential).

    The arrival stream is keyed by *site name*
    (``hpc.background-load.<site>``): generators for different sites on
    one engine draw from independent streams, so adding a second site's
    load never perturbs the first site's schedule. (An earlier revision
    shared one ``hpc.background-load`` stream across every generator;
    the whole-program stream-provenance pass surfaced the collision.)
    """

    def __init__(
        self,
        site: HpcSite,
        arrival_rate_per_hour: float,
        mean_job_nodes: float = 4.0,
        mean_job_hours: float = 3.0,
    ) -> None:
        if arrival_rate_per_hour < 0:
            raise ValueError("negative arrival rate")
        if mean_job_nodes < 1.0 or mean_job_hours <= 0:
            raise ValueError("job size/duration means out of range")
        self.site = site
        self.arrival_rate_per_hour = arrival_rate_per_hour
        self.mean_job_nodes = mean_job_nodes
        self.mean_job_hours = mean_job_hours
        self._rng = site.engine.rng(hpc_background_load_stream(site.name))
        self._count = 0

    def offered_load(self) -> float:
        """Expected fraction of cluster capacity the load consumes."""
        node_hours_per_hour = (
            self.arrival_rate_per_hour * self.mean_job_nodes * self.mean_job_hours
        )
        return node_hours_per_hour / self.site.cluster.total_nodes

    def start(self, duration_s: float) -> None:
        """Begin injecting jobs for ``duration_s`` of simulated time."""
        if self.arrival_rate_per_hour == 0:
            return
        self.site.engine.process(
            self._body(duration_s), name=f"bg-load:{self.site.name}"
        )

    def _body(self, duration_s: float) -> Generator:
        engine = self.site.engine
        end = engine.now + duration_s
        rate_per_s = self.arrival_rate_per_hour / 3600.0
        while engine.now < end:
            gap = float(self._rng.exponential(1.0 / rate_per_s))
            yield engine.timeout(gap)
            if engine.now >= end:
                break
            nodes = min(
                int(self._rng.geometric(1.0 / self.mean_job_nodes)),
                self.site.cluster.total_nodes,
            )
            runtime = float(self._rng.exponential(self.mean_job_hours * 3600.0))
            runtime = max(runtime, 60.0)
            walltime = min(runtime * 1.3 + 600.0, self.site.cluster.max_walltime_s)
            runtime = min(runtime, walltime)
            self._count += 1
            self.site.submit(
                Job(
                    name=f"bg-{self.site.name}-{self._count}",
                    nodes=nodes,
                    walltime_s=walltime,
                    runtime_s=runtime,
                    user="background",
                )
            )

    @property
    def jobs_injected(self) -> int:
        return self._count
