"""Presets for the paper's three HPC facilities.

Shapes are representative of the partitions the CFD runs used (64-core
nodes everywhere -- "with 64 cores, the average total time ..."). Module
inventories encode the section 4.3 heterogeneity:

* **ND CRC** -- UGE batch system (the artifact requires "UGE as its batch
  scheduler"); OpenGL ParaView + X.Org with virtual framebuffer.
* **Anvil** (Purdue) -- Slurm; OpenGL ParaView but no virtual framebuffer
  and no Mesa pass-through: only SSH display forwarding works.
* **Stampede3** (TACC) -- Slurm; Mesa-compiled ParaView renders off-screen.
"""

from __future__ import annotations

from repro.hpc.cluster import Cluster
from repro.hpc.modules import GlStack, ModuleSystem, SoftwareModule
from repro.hpc.site import BatchSystem, HpcSite
from repro.simkernel import Engine


def _common_modules(openfoam: str, paraview: str) -> list[SoftwareModule]:
    return [
        SoftwareModule("gcc", "12.2.0"),
        SoftwareModule("openmpi", "4.1.5", depends_on=("gcc/12.2.0",)),
        SoftwareModule("openfoam", openfoam, depends_on=("openmpi/4.1.5",)),
        SoftwareModule("paraview", paraview),
        SoftwareModule("miniconda", "24.1"),
        SoftwareModule("python", "3.11"),
    ]


def nd_crc(engine: Engine, total_nodes: int = 24) -> HpcSite:
    """Notre Dame Center for Research Computing."""
    cluster = Cluster(
        engine, "nd-crc", total_nodes=total_nodes, cores_per_node=64,
        max_walltime_s=48 * 3600.0,
    )
    modules = ModuleSystem(
        available=_common_modules(openfoam="v2312", paraview="5.11.2"),
        gl_stack=GlStack.OPENGL_XORG,
        supports_virtual_framebuffer=True,
        supports_mesa_passthrough=False,
    )
    return HpcSite("nd-crc", cluster, BatchSystem.UGE, modules)


def anvil(engine: Engine, total_nodes: int = 1000) -> HpcSite:
    """Purdue Anvil (ACCESS)."""
    cluster = Cluster(
        engine, "anvil", total_nodes=total_nodes, cores_per_node=128,
        max_walltime_s=96 * 3600.0,
    )
    modules = ModuleSystem(
        available=_common_modules(openfoam="v2206", paraview="5.10.1"),
        gl_stack=GlStack.OPENGL_BARE,
        supports_virtual_framebuffer=False,
        supports_mesa_passthrough=False,
    )
    return HpcSite("anvil", cluster, BatchSystem.SLURM, modules)


def stampede3(engine: Engine, total_nodes: int = 560) -> HpcSite:
    """TACC Stampede3."""
    cluster = Cluster(
        engine, "stampede3", total_nodes=total_nodes, cores_per_node=112,
        max_walltime_s=48 * 3600.0,
    )
    modules = ModuleSystem(
        available=_common_modules(openfoam="v2306", paraview="5.12.0"),
        gl_stack=GlStack.MESA,
        supports_virtual_framebuffer=False,
        supports_mesa_passthrough=True,
    )
    return HpcSite("stampede3", cluster, BatchSystem.SLURM, modules)


def all_sites(engine: Engine) -> dict[str, HpcSite]:
    """All three facilities on one engine."""
    return {
        "nd-crc": nd_crc(engine),
        "anvil": anvil(engine),
        "stampede3": stampede3(engine),
    }
