"""The cluster: node accounting + batch queue + scheduler drive loop."""

from __future__ import annotations

from typing import Optional

from repro.hpc.job import Job, JobState
from repro.hpc.schedulers import BackfillScheduler, Scheduler
from repro.simkernel import Engine


class SubmitError(Exception):
    """Job rejected at submission (too big, bad walltime...)."""


class Cluster:
    """A homogeneous cluster with a batch queue.

    Parameters
    ----------
    engine:
        Simulation engine.
    name:
        Cluster name (e.g. ``"nd-crc"``).
    total_nodes / cores_per_node:
        Hardware shape. The testbed's nodes are 64-core.
    scheduler:
        Scheduling discipline (default conservative backfill).
    max_walltime_s:
        Site policy cap on requested walltime.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        total_nodes: int,
        cores_per_node: int = 64,
        scheduler: Optional[Scheduler] = None,
        max_walltime_s: float = 48 * 3600.0,
    ) -> None:
        if total_nodes <= 0 or cores_per_node <= 0:
            raise ValueError("cluster shape must be positive")
        self.engine = engine
        self.name = name
        self.total_nodes = total_nodes
        self.cores_per_node = cores_per_node
        self.scheduler = scheduler if scheduler is not None else BackfillScheduler()
        self.max_walltime_s = max_walltime_s
        self._pending: list[Job] = []
        self._running: list[Job] = []
        self._history: list[Job] = []
        self._next_id = 1

    # -- state -------------------------------------------------------------

    @property
    def free_nodes(self) -> int:
        return self.total_nodes - sum(j.nodes for j in self._running)

    @property
    def pending_jobs(self) -> list[Job]:
        return list(self._pending)

    @property
    def running_jobs(self) -> list[Job]:
        return list(self._running)

    @property
    def completed_jobs(self) -> list[Job]:
        return [j for j in self._history if j.is_terminal]

    # -- submission -----------------------------------------------------------

    def submit(self, job: Job) -> Job:
        """Enqueue a job; returns it with ``job_id`` and events populated."""
        if job.state is not JobState.PENDING or job.job_id != -1:
            raise SubmitError(f"job {job.name!r} was already submitted")
        if job.nodes > self.total_nodes:
            raise SubmitError(
                f"job {job.name!r} wants {job.nodes} nodes; "
                f"{self.name} has {self.total_nodes}"
            )
        if job.walltime_s > self.max_walltime_s:
            raise SubmitError(
                f"job {job.name!r} walltime {job.walltime_s}s exceeds site "
                f"limit {self.max_walltime_s}s"
            )
        job.job_id = self._next_id
        self._next_id += 1
        job.submit_time = self.engine.now
        job.started = self.engine.event()
        job.finished = self.engine.event()
        self._pending.append(job)
        self._history.append(job)
        self._drive()
        return job

    def cancel(self, job: Job) -> None:
        """Cancel a pending or running job."""
        self._terminate(job, JobState.CANCELLED)

    def fail(self, job: Job) -> None:
        """Kill a pending or running job as FAILED (node crash, preemption)."""
        self._terminate(job, JobState.FAILED)

    def _terminate(self, job: Job, state: JobState) -> None:
        if job in self._pending:
            self._pending.remove(job)
            job.state = state
            job.end_time = self.engine.now
            if job.finished is not None and not job.finished.triggered:
                job.finished.succeed(job)
            self._drive()
        elif job in self._running:
            self._finish(job, state)
        elif not job.is_terminal:
            raise SubmitError(f"job {job.name!r} is not on cluster {self.name}")

    # -- node failures -----------------------------------------------------------

    def fail_nodes(self, n: int) -> list[Job]:
        """Take ``n`` nodes out of service, killing jobs that no longer fit.

        Victims are the most recently started running jobs (the batch
        system's usual preemption order -- oldest work is preserved), each
        terminated as FAILED. Returns the killed jobs. The capacity stays
        reduced until :meth:`restore_nodes`.
        """
        if n <= 0:
            raise ValueError(f"node failure count must be positive: {n}")
        if n >= self.total_nodes:
            raise ValueError(
                f"cannot fail {n} of {self.total_nodes} nodes: at least one "
                f"node must survive"
            )
        self.total_nodes -= n
        # Pending jobs that can no longer ever fit would wedge the backfill
        # reservation; they die with the nodes. Remove them all before any
        # _drive so the scheduler never sees an unsatisfiable head.
        doomed = [j for j in self._pending if j.nodes > self.total_nodes]
        for job in doomed:
            self._pending.remove(job)
            job.state = JobState.FAILED
            job.end_time = self.engine.now
            if job.finished is not None and not job.finished.triggered:
                job.finished.succeed(job)
        killed: list[Job] = list(doomed)
        while sum(j.nodes for j in self._running) > self.total_nodes:
            victim = max(
                self._running, key=lambda j: (j.start_time or 0.0, j.job_id)
            )
            killed.append(victim)
            self._finish(victim, JobState.FAILED)
        self._drive()
        return killed

    def restore_nodes(self, n: int) -> None:
        """Return ``n`` repaired nodes to service and re-drive the queue."""
        if n <= 0:
            raise ValueError(f"node restore count must be positive: {n}")
        self.total_nodes += n
        self._drive()

    # -- internals --------------------------------------------------------------

    def _drive(self) -> None:
        """Ask the scheduler what starts now, and start it."""
        to_start = self.scheduler.select(
            self._pending, self._running, self.free_nodes,
            self.total_nodes, self.engine.now,
        )
        for job in to_start:
            self._start(job)

    def _start(self, job: Job) -> None:
        if job.nodes > self.free_nodes:  # pragma: no cover - scheduler bug trap
            raise RuntimeError(
                f"scheduler over-allocated: {job.name!r} wants {job.nodes}, "
                f"only {self.free_nodes} free"
            )
        self._pending.remove(job)
        self._running.append(job)
        job.state = JobState.RUNNING
        job.start_time = self.engine.now
        assert job.started is not None
        job.started.succeed(job)
        ends_in = min(job.runtime_s, job.walltime_s)
        timed_out = job.runtime_s > job.walltime_s

        def _complete(_event) -> None:
            if job.state is JobState.RUNNING:
                self._finish(
                    job, JobState.TIMEOUT if timed_out else JobState.COMPLETED
                )

        self.engine.timeout(ends_in).add_callback(_complete)

    def _finish(self, job: Job, state: JobState) -> None:
        self._running.remove(job)
        job.state = state
        job.end_time = self.engine.now
        assert job.finished is not None
        if not job.finished.triggered:
            job.finished.succeed(job)
        self._drive()

    # -- reporting ---------------------------------------------------------------

    def utilization(self) -> float:
        """Instantaneous node utilization in [0, 1]."""
        return 1.0 - self.free_nodes / self.total_nodes

    def queue_wait_stats(self) -> tuple[float, float]:
        """(mean, max) queue wait over started jobs so far, in seconds."""
        waits = [
            j.queue_wait_s for j in self._history if j.queue_wait_s is not None
        ]
        if not waits:
            return (0.0, 0.0)
        return (sum(waits) / len(waits), max(waits))
