"""Batch jobs: the unit the cluster schedules."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.simkernel import Event


class JobState(Enum):
    PENDING = "pending"      # submitted, waiting in queue
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"      # hit its walltime limit
    FAILED = "failed"        # killed by a node failure / preemption


@dataclass
class Job:
    """A batch job request.

    Attributes
    ----------
    job_id:
        Assigned by the cluster at submission.
    name:
        Human-readable label.
    nodes:
        Whole nodes requested (the testbed's schedulers allocate by node).
    walltime_s:
        Requested limit; the scheduler kills the job at this point and the
        backfill scheduler plans around it.
    runtime_s:
        The job's *actual* duration (how the simulation knows when it would
        finish). Runtime > walltime produces a TIMEOUT.
    user:
        Owner label (background load vs. the xGFabric pilot).
    """

    name: str
    nodes: int
    walltime_s: float
    runtime_s: float
    user: str = "xgfabric"
    job_id: int = -1
    state: JobState = JobState.PENDING
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    started: Optional[Event] = field(default=None, repr=False)
    finished: Optional[Event] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError(f"job {self.name!r}: nodes must be positive")
        if self.walltime_s <= 0:
            raise ValueError(f"job {self.name!r}: walltime must be positive")
        if self.runtime_s < 0:
            raise ValueError(f"job {self.name!r}: negative runtime")

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Time spent pending, once started."""
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def is_terminal(self) -> bool:
        return self.state in (
            JobState.COMPLETED,
            JobState.CANCELLED,
            JobState.TIMEOUT,
            JobState.FAILED,
        )
