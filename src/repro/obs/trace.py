"""Dual-clock tracing: nested spans stamped with simulated and wall time.

Every span carries two intervals:

* **simulated time** -- read from the attached
  :class:`~repro.simkernel.engine.Engine`'s clock, so a span around a
  CSPOT append measures the protocol's modeled latency (the quantity the
  paper's Table 1 and section 4.4 report);
* **wall time** -- ``time.perf_counter()``, so the same span also measures
  what the *reproduction* costs to run (the quantity the perf PRs care
  about).

Design constraints, in priority order:

1. **Disabled tracing is free.** ``NULL_TRACER`` (the default everywhere)
   returns one shared, immutable :data:`NULL_SPAN` from every call -- no
   allocation, no clock reads, no branches beyond ``tracer.enabled``.
   Instrumented hot loops guard on ``tracer.enabled`` before building
   attribute dicts, so the disabled cost is a single attribute load and
   branch (asserted <3% by ``benchmarks/test_obs_overhead.py``).
2. **Determinism.** Span ids are sequential, spans are recorded in
   creation order, and sim-time stamps derive only from the engine clock
   -- two runs with the same seed export byte-identical sim-time traces
   (the determinism guard test).
3. **Causality is explicit.** A discrete-event simulation interleaves
   hundreds of concurrent processes, so "current span" context would lie.
   Parents and causal predecessors (``cause=``) are passed explicitly;
   :mod:`repro.obs.critical_path` walks the ``cause`` links.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.simkernel.engine import Engine


class Span:
    """One traced operation with sim-time and wall-time intervals.

    Spans are created by :meth:`Tracer.span` (open, ended later) or
    :meth:`Tracer.record` (already completed). A span is "finished" once
    ``end_sim`` is not ``None``; only finished spans are exported.
    """

    __slots__ = (
        "span_id", "name", "category", "parent_id", "cause_id",
        "start_sim", "end_sim", "start_wall", "end_wall", "attrs",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        category: str,
        parent_id: Optional[int],
        cause_id: Optional[int],
        start_sim: float,
        start_wall: float,
        attrs: Optional[dict],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.category = category
        self.parent_id = parent_id
        self.cause_id = cause_id
        self.start_sim = start_sim
        self.end_sim: Optional[float] = None
        self.start_wall = start_wall
        self.end_wall: Optional[float] = None
        self.attrs: dict = attrs if attrs is not None else {}

    # -- lifecycle -------------------------------------------------------------

    def end(self) -> "Span":
        """Close the span at the current sim/wall instant (idempotent)."""
        if self.end_sim is None:
            self.end_sim = self._tracer.now_sim()
            self.end_wall = time.perf_counter()
        return self

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key/value attributes (merged; later keys win)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        return False

    # -- derived quantities -----------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_sim is not None

    @property
    def duration_sim(self) -> float:
        """Simulated duration in seconds (0.0 while open)."""
        return (self.end_sim - self.start_sim) if self.end_sim is not None else 0.0

    @property
    def duration_wall(self) -> float:
        """Wall-clock duration in seconds (0.0 while open)."""
        return (self.end_wall - self.start_wall) if self.end_wall is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_sim * 1e3:.2f}ms" if self.finished else "open"
        return f"Span(#{self.span_id} {self.name!r} [{self.category}] {state})"


class _NullSpan:
    """The shared no-op span returned while tracing is disabled.

    Immutable and stateless: every method is a no-op returning ``self``,
    so instrumented code can call ``span.annotate(...).end()`` without a
    single allocation.
    """

    __slots__ = ()

    span_id = 0
    name = ""
    category = ""
    parent_id = None
    cause_id = None
    start_sim = 0.0
    end_sim = 0.0
    start_wall = 0.0
    end_wall = 0.0
    finished = True
    duration_sim = 0.0
    duration_wall = 0.0

    @property
    def attrs(self) -> dict:
        return {}

    def end(self) -> "_NullSpan":
        return self

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return "NullSpan()"


#: The shared disabled-mode span.
NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans stamped with both simulated and wall time.

    Parameters
    ----------
    enabled:
        When ``False`` every :meth:`span`/:meth:`record` call returns
        :data:`NULL_SPAN` and nothing is stored. The module-level
        :data:`NULL_TRACER` is the canonical disabled instance and the
        default for every instrumented constructor.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` instrumented code
        reaches through ``tracer.metrics`` (a fresh registry by default),
        so one object carries the whole observability surface.
    """

    def __init__(
        self,
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: list[Span] = []
        self.events_observed = 0
        self._engine: Optional["Engine"] = None
        self._next_id = 1

    # -- clock / engine attachment ----------------------------------------------

    def attach(self, engine: "Engine") -> "Tracer":
        """Bind this tracer to an engine.

        The engine's clock becomes the sim-time source, and -- via the
        engine's existing ``add_trace_hook`` seam -- every processed event
        is counted into the ``sim.events`` metric. One attach call is the
        single attachment point through which a tracer observes a whole
        run; no other engine surgery is needed.
        """
        self._engine = engine
        if self.enabled:
            counter = self.metrics.counter(
                "sim.events", help="events processed by the attached engine"
            )

            def _on_event(now: float, event: object) -> None:
                self.events_observed += 1
                counter.inc()

            engine.add_trace_hook(_on_event)
        return self

    def now_sim(self) -> float:
        """Current simulated time (0.0 when no engine is attached)."""
        return self._engine.now if self._engine is not None else 0.0

    # -- span creation -----------------------------------------------------------

    def span(
        self,
        name: str,
        category: str = "",
        parent: Optional[Span] = None,
        cause: Optional[Span] = None,
        attrs: Optional[dict] = None,
    ):
        """Open a span starting now; caller must ``end()`` it (or use
        ``with``). Returns :data:`NULL_SPAN` when disabled."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(
            self,
            self._next_id,
            name,
            category,
            parent.span_id if parent is not None and parent.span_id else None,
            cause.span_id if cause is not None and cause.span_id else None,
            self.now_sim(),
            time.perf_counter(),
            attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def record(
        self,
        name: str,
        start_sim: float,
        end_sim: float,
        category: str = "",
        parent: Optional[Span] = None,
        cause: Optional[Span] = None,
        attrs: Optional[dict] = None,
    ):
        """Record an already-completed sim-time interval as a span.

        For operations whose boundaries are only known after the fact
        (e.g. a pilot task's queue wait, reconstructed from the task's
        recorded start time). Wall stamps are both "now": the wall cost
        of a purely simulated interval is zero by definition.
        """
        if not self.enabled:
            return NULL_SPAN
        if end_sim < start_sim:
            raise ValueError(
                f"span {name!r}: end_sim {end_sim} before start_sim {start_sim}"
            )
        span = self.span(name, category=category, parent=parent, cause=cause,
                         attrs=attrs)
        span.start_sim = start_sim
        span.end_sim = end_sim
        span.end_wall = span.start_wall
        return span

    # -- queries -----------------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        """All finished spans, ordered by (start_sim, span_id)."""
        return sorted(
            (s for s in self.spans if s.finished),
            key=lambda s: (s.start_sim, s.span_id),
        )

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.finished_spans() if s.name == name]

    def spans_in(self, category: str) -> list[Span]:
        return [s for s in self.finished_spans() if s.category == category]

    def find(self, span_id: int) -> Optional[Span]:
        for s in self.spans:
            if s.span_id == span_id:
                return s
        return None

    def clear(self) -> None:
        """Drop all recorded spans (metrics are left alone)."""
        self.spans.clear()


#: The canonical disabled tracer: default for every instrumented component.
NULL_TRACER = Tracer(enabled=False)


def mean_duration_sim(spans: Iterable[Span]) -> float:
    """Mean simulated duration of the given spans (0.0 when empty)."""
    durations = [s.duration_sim for s in spans if s.finished]
    return sum(durations) / len(durations) if durations else 0.0
