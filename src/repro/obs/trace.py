"""Dual-clock tracing: nested spans stamped with simulated and wall time.

Every span carries two intervals:

* **simulated time** -- read from the attached
  :class:`~repro.simkernel.engine.Engine`'s clock, so a span around a
  CSPOT append measures the protocol's modeled latency (the quantity the
  paper's Table 1 and section 4.4 report);
* **wall time** -- ``time.perf_counter()``, so the same span also measures
  what the *reproduction* costs to run (the quantity the perf PRs care
  about).

Design constraints, in priority order:

1. **Disabled tracing is free.** ``NULL_TRACER`` (the default everywhere)
   returns one shared, immutable :data:`NULL_SPAN` from every call -- no
   allocation, no clock reads, no branches beyond ``tracer.enabled``.
   Instrumented hot loops guard on ``tracer.enabled`` before building
   attribute dicts, so the disabled cost is a single attribute load and
   branch (asserted <3% by ``benchmarks/test_obs_overhead.py``).
2. **Determinism.** Span ids are sequential, spans are recorded in
   creation order, and sim-time stamps derive only from the engine clock
   -- two runs with the same seed export byte-identical sim-time traces
   (the determinism guard test).
3. **Causality is explicit.** A discrete-event simulation interleaves
   hundreds of concurrent processes, so "current span" context would lie.
   Parents and causal predecessors (``cause=``) are passed explicitly;
   :mod:`repro.obs.critical_path` walks the ``cause`` links.
4. **Telemetry can stream.** ``Tracer.subscribe(sink)`` registers a
   :class:`SpanSink` that receives every span the moment it finishes, so
   online consumers (:mod:`repro.obs.stream` sketches,
   :mod:`repro.obs.slo` monitors, the :mod:`repro.obs.recorder` ring)
   aggregate during the run instead of post-processing the span list.
5. **Retention can be bounded.** ``Tracer(max_spans=N)`` keeps only the
   most recent ``N`` spans (a ring), for long-horizon runs where the
   O(spans) record would grow without bound; streaming sinks still see
   every span, and ``spans_dropped`` accounts for the evictions.
"""

from __future__ import annotations

import time
from collections import deque
from types import TracebackType
from typing import TYPE_CHECKING, Any, Iterable, MutableSequence, Optional, Protocol, cast

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.simkernel.engine import Engine


class SpanSink(Protocol):
    """An online consumer of finished spans (see :meth:`Tracer.subscribe`)."""

    def on_span(self, span: "Span") -> None: ...  # pragma: no cover - protocol


class Span:
    """One traced operation with sim-time and wall-time intervals.

    Spans are created by :meth:`Tracer.span` (open, ended later) or
    :meth:`Tracer.record` (already completed). A span is "finished" once
    ``end_sim`` is not ``None``; only finished spans are exported.
    """

    __slots__ = (
        "span_id", "name", "category", "parent_id", "cause_id",
        "start_sim", "end_sim", "start_wall", "end_wall", "attrs",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        category: str,
        parent_id: Optional[int],
        cause_id: Optional[int],
        start_sim: float,
        start_wall: float,
        attrs: Optional[dict[str, Any]],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.category = category
        self.parent_id = parent_id
        self.cause_id = cause_id
        self.start_sim = start_sim
        self.end_sim: Optional[float] = None
        self.start_wall = start_wall
        self.end_wall: Optional[float] = None
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}

    # -- lifecycle -------------------------------------------------------------

    def end(self) -> "Span":
        """Close the span at the current sim/wall instant (idempotent)."""
        if self.end_sim is None:
            self.end_sim = self._tracer.now_sim()
            self.end_wall = time.perf_counter()
            self._tracer._emit(self)
        return self

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key/value attributes (merged; later keys win)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        return False

    # -- derived quantities -----------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_sim is not None

    @property
    def duration_sim(self) -> float:
        """Simulated duration in seconds (0.0 while open)."""
        return (self.end_sim - self.start_sim) if self.end_sim is not None else 0.0

    @property
    def duration_wall(self) -> float:
        """Wall-clock duration in seconds (0.0 while open)."""
        return (self.end_wall - self.start_wall) if self.end_wall is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_sim * 1e3:.2f}ms" if self.finished else "open"
        return f"Span(#{self.span_id} {self.name!r} [{self.category}] {state})"


class _NullSpan:
    """The shared no-op span returned while tracing is disabled.

    Immutable and stateless: every method is a no-op returning ``self``,
    so instrumented code can call ``span.annotate(...).end()`` without a
    single allocation.
    """

    __slots__ = ()

    span_id = 0
    name = ""
    category = ""
    parent_id = None
    cause_id = None
    start_sim = 0.0
    end_sim = 0.0
    start_wall = 0.0
    end_wall = 0.0
    finished = True
    duration_sim = 0.0
    duration_wall = 0.0

    @property
    def attrs(self) -> dict[str, Any]:
        return {}

    def end(self) -> "_NullSpan":
        return self

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return "NullSpan()"


#: The shared disabled-mode span.
NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans stamped with both simulated and wall time.

    Parameters
    ----------
    enabled:
        When ``False`` every :meth:`span`/:meth:`record` call returns
        :data:`NULL_SPAN` and nothing is stored. The module-level
        :data:`NULL_TRACER` is the canonical disabled instance and the
        default for every instrumented constructor.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` instrumented code
        reaches through ``tracer.metrics`` (a fresh registry by default),
        so one object carries the whole observability surface.
    max_spans:
        When set, retained spans are a ring of the ``max_spans`` most
        recent (bounded memory for long-horizon runs); older spans are
        evicted in creation order and counted in ``spans_dropped``.
        Subscribed sinks still observe every span, so streaming
        aggregates stay exact while the in-memory record is a window.
        Default ``None`` keeps the historical keep-everything list.
    """

    def __init__(
        self,
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        max_spans: Optional[int] = None,
    ) -> None:
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1: {max_spans}")
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_spans = max_spans
        self.spans: MutableSequence[Span] = (
            deque(maxlen=max_spans) if max_spans is not None else []
        )
        self.spans_dropped = 0
        self.events_observed = 0
        self._engine: Optional["Engine"] = None
        self._next_id = 1
        self._sinks: list[SpanSink] = []

    # -- clock / engine attachment ----------------------------------------------

    def attach(self, engine: "Engine") -> "Tracer":
        """Bind this tracer to an engine.

        The engine's clock becomes the sim-time source, and -- via the
        engine's existing ``add_trace_hook`` seam -- every processed event
        is counted into the ``sim.events`` metric. One attach call is the
        single attachment point through which a tracer observes a whole
        run; no other engine surgery is needed.
        """
        self._engine = engine
        if self.enabled:
            counter = self.metrics.counter(
                "sim.events", help="events processed by the attached engine"
            )
            # This hook runs once per engine event -- the hottest path in
            # the whole simulation. Bump the counter cell directly instead
            # of inc(): collect() output is identical, but the per-event
            # observer broadcast (sketch folds, recorder ring) is skipped
            # -- a constant-1.0 stream carries no information worth the
            # fan-out cost. events_observed remains the live count.
            data = counter._data

            def _on_event(now: float, event: object) -> None:
                self.events_observed += 1
                data[()] = data.get((), 0.0) + 1.0

            engine.add_trace_hook(_on_event)
        return self

    def now_sim(self) -> float:
        """Current simulated time (0.0 when no engine is attached)."""
        return self._engine.now if self._engine is not None else 0.0

    # -- streaming subscription --------------------------------------------------

    def subscribe(self, sink: SpanSink) -> SpanSink:
        """Register an online consumer of finished spans.

        ``sink.on_span(span)`` is called exactly once per span, at the
        instant it finishes (``end()`` or :meth:`record`), in finish
        order -- the deterministic event order of the simulation. Sinks
        must not create spans or mutate the tracer (that would make the
        record depend on who is watching it). Subscribing to a disabled
        tracer is a programming error: nothing would ever flow.
        """
        if not self.enabled:
            raise ValueError(
                "cannot subscribe to a disabled tracer: no spans will flow "
                "(construct the fabric with tracer=Tracer())"
            )
        self._sinks.append(sink)
        return sink

    def _emit(self, span: Span) -> None:
        for sink in self._sinks:
            sink.on_span(span)

    # -- span creation -----------------------------------------------------------

    def span(
        self,
        name: str,
        category: str = "",
        parent: Optional[Span] = None,
        cause: Optional[Span] = None,
        attrs: Optional[dict[str, Any]] = None,
    ) -> "Span":
        """Open a span starting now; caller must ``end()`` it (or use
        ``with``). Returns :data:`NULL_SPAN` when disabled."""
        if not self.enabled:
            # NULL_SPAN implements Span's whole surface; typed as Span so
            # instrumented call sites need no union handling.
            return cast("Span", NULL_SPAN)
        span = Span(
            self,
            self._next_id,
            name,
            category,
            parent.span_id if parent is not None and parent.span_id else None,
            cause.span_id if cause is not None and cause.span_id else None,
            self.now_sim(),
            time.perf_counter(),
            attrs,
        )
        self._next_id += 1
        if (
            self.max_spans is not None
            and len(self.spans) >= self.max_spans
        ):
            self.spans_dropped += 1  # the deque evicts the oldest span
        self.spans.append(span)
        return span

    def record(
        self,
        name: str,
        start_sim: float,
        end_sim: float,
        category: str = "",
        parent: Optional[Span] = None,
        cause: Optional[Span] = None,
        attrs: Optional[dict[str, Any]] = None,
    ) -> "Span":
        """Record an already-completed sim-time interval as a span.

        For operations whose boundaries are only known after the fact
        (e.g. a pilot task's queue wait, reconstructed from the task's
        recorded start time). Wall stamps are both "now": the wall cost
        of a purely simulated interval is zero by definition.
        """
        if not self.enabled:
            return cast("Span", NULL_SPAN)
        if end_sim < start_sim:
            raise ValueError(
                f"span {name!r}: end_sim {end_sim} before start_sim {start_sim}"
            )
        span = self.span(name, category=category, parent=parent, cause=cause,
                         attrs=attrs)
        span.start_sim = start_sim
        span.end_sim = end_sim
        span.end_wall = span.start_wall
        self._emit(span)
        return span

    # -- queries -----------------------------------------------------------------

    @property
    def spans_created(self) -> int:
        """Spans ever created (retained + ring-evicted)."""
        return self._next_id - 1

    def finished_spans(self) -> list[Span]:
        """All finished spans, ordered by (start_sim, span_id)."""
        return sorted(
            (s for s in self.spans if s.finished),
            key=lambda s: (s.start_sim, s.span_id),
        )

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.finished_spans() if s.name == name]

    def spans_in(self, category: str) -> list[Span]:
        return [s for s in self.finished_spans() if s.category == category]

    def find(self, span_id: int) -> Optional[Span]:
        for s in self.spans:
            if s.span_id == span_id:
                return s
        return None

    def clear(self) -> None:
        """Drop all recorded spans (metrics are left alone)."""
        self.spans.clear()
        self.spans_dropped = 0


#: The canonical disabled tracer: default for every instrumented component.
NULL_TRACER = Tracer(enabled=False)


def mean_duration_sim(spans: Iterable[Span]) -> float:
    """Mean simulated duration of the given spans (0.0 when empty)."""
    durations = [s.duration_sim for s in spans if s.finished]
    return sum(durations) / len(durations) if durations else 0.0
