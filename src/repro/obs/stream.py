"""Streaming aggregation: quantile sketches and windowed rates, online.

The post-hoc span record answers "what were the tails?" after the run; a
production fabric needs the same answer *during* the run, in bounded
memory. This module provides the online half of the observability layer:

* :class:`QuantileSketch` -- a DDSketch-style fixed-boundary quantile
  sketch with a configurable **relative**-error bound: any reported
  quantile ``x`` satisfies ``|x - v| <= relative_error * v`` where ``v``
  is the true sample at that rank. Buckets are logarithmic with fixed
  (value-independent) boundaries, so two sketches fed the same values in
  any order hold byte-identical state, and sketches **merge** exactly
  (shard per UE / per log, combine at report time). Memory is O(buckets),
  not O(samples).
* :class:`WindowedRate` -- event and value rates over a sliding sim-time
  window, bucketed so memory is O(resolution) regardless of event count.
  This is the burn-rate substrate for :mod:`repro.obs.slo`.
* :class:`StreamAggregator` -- the sink that ties both to the live run:
  subscribe it to a :class:`~repro.obs.trace.Tracer` (span durations by
  span name) and a :class:`~repro.obs.metrics.MetricsRegistry` (metric
  observations by family + label set) and p50/p95/p99 of ``cspot.append``,
  per-UE throughput, or any stage latency are available mid-run.

Everything here is deterministic: no clocks are read (sim times arrive on
the events), no RNG is drawn, and every serialization is key-sorted -- two
same-seed runs produce byte-identical sketch snapshots.
"""

from __future__ import annotations

import json
import math
from collections import deque
from itertools import chain
from typing import Any, Callable, Iterable, Optional

import numpy as np

from repro.obs.trace import Span

#: Default relative-error bound: 1% of the value at the requested rank.
DEFAULT_RELATIVE_ERROR = 0.01

#: Values with magnitude below this collapse into the zero bucket.
MIN_TRACKABLE = 1e-9


def _fold_exact(partials: list[float], x: float) -> None:
    """Fold one finite float into Shewchuk partials, in place, exactly.

    The partials are non-overlapping doubles whose mathematical sum equals
    the exact (real-number) sum of every value ever folded in -- the same
    representation ``math.fsum`` maintains internally. Because the folded
    state represents the *exact* sum, folding is exactly associative and
    commutative: any partition of a value stream, folded in any order and
    merged, rounds to the same double. That is what makes cross-shard
    sketch merges byte-identical regardless of shard count.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


def _exact_chunk_heads(values: list[float]) -> list[float]:
    """Extract an exact small-list representation of ``sum(values)``.

    Iterated ``math.fsum`` extraction (Rump-style): repeatedly subtract the
    correctly-rounded sum until the residual is exactly zero. The returned
    heads (usually one or two doubles) sum *exactly* to the exact sum of
    ``values``, at C speed instead of a per-value Python fold.
    """
    heads: list[float] = []
    # The residual shrinks by >= 2^52 per pass, so the double exponent
    # range bounds the loop at ~41 passes; 64 is a defensive ceiling.
    for _ in range(64):
        s = math.fsum(chain(values, (-h for h in heads)))
        if s == 0.0 or not math.isfinite(s):
            if s != 0.0:
                heads.append(s)
            break
        heads.append(s)
    return heads


class QuantileSketch:
    """Mergeable quantile sketch with a relative-error guarantee.

    Values are mapped to logarithmic buckets ``(gamma**(i-1), gamma**i]``
    with ``gamma = (1 + a) / (1 - a)`` for relative error ``a``; a bucket
    is represented by ``2 * gamma**i / (gamma + 1)``, whose distance to
    any value in the bucket is at most ``a`` of that value. Negative
    values get a mirrored bucket table; magnitudes below
    ``MIN_TRACKABLE`` share one zero bucket (reported as ``0.0``).

    ``max_bins`` bounds memory: when exceeded, the two lowest-magnitude
    positive bins merge (the standard DDSketch collapse), which degrades
    accuracy only for the lowest quantiles. The default is far above
    what any latency distribution in this system produces.
    """

    __slots__ = (
        "relative_error", "max_bins", "_gamma", "_log_gamma",
        "_bins", "_neg_bins", "zero_count",
        "count", "_sum_partials", "_inf_sum", "min", "max", "collapsed",
        "_memo_value", "_memo_key",
    )

    def __init__(
        self,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        max_bins: int = 4096,
    ) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError(
                f"relative_error must be in (0, 1): {relative_error}"
            )
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2: {max_bins}")
        self.relative_error = relative_error
        self.max_bins = max_bins
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self._bins: dict[int, int] = {}
        self._neg_bins: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        # Exact running sum, kept as Shewchuk partials (see _fold_exact):
        # the fold is exactly associative/commutative, so merged shard
        # sketches report the same `sum` as the unsharded stream, bit for
        # bit. Non-finite observations accumulate separately (IEEE inf
        # arithmetic is itself order-independent).
        self._sum_partials: list[float] = []
        self._inf_sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.collapsed = 0
        # One-entry bucket-key memo: metric streams repeat the same value
        # (counter increments are almost always 1.0), and the log() in
        # _key dominates add() -- caching the last mapping makes the
        # repeated-value path pure dict arithmetic.
        self._memo_value = math.nan
        self._memo_key = 0

    # -- ingestion ---------------------------------------------------------------

    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def add(self, value: float) -> None:
        """Fold one observation into the sketch (O(1) amortized)."""
        value = float(value)
        if value != value:  # NaN (cheaper than math.isnan on the hot path)
            raise ValueError("cannot sketch NaN")
        self.count += 1
        if math.isfinite(value):
            _fold_exact(self._sum_partials, value)
        else:
            self._inf_sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if -MIN_TRACKABLE <= value <= MIN_TRACKABLE:
            self.zero_count += 1
            return
        bins = self._bins if value > 0 else self._neg_bins
        magnitude = abs(value)
        if magnitude == self._memo_value:
            key = self._memo_key
        else:
            key = self._key(magnitude)
            self._memo_value = magnitude
            self._memo_key = key
        bins[key] = bins.get(key, 0) + 1
        if len(bins) > self.max_bins:
            self._collapse(bins)

    def add_array(self, values: "np.ndarray") -> None:
        """Fold a whole array of observations in vectorized batch form.

        State-identical to calling :meth:`add` per element in order
        (parity-tested): bucket keys are computed with the same
        ``ceil(log(|v|) / log(gamma))`` mapping, counts via
        ``numpy.unique``, and the exact sum via iterated-``fsum``
        extraction folded into the same Shewchuk partials. This is the
        shard hot path: a 100k-UE sample block ingests in a handful of
        numpy passes instead of ~2M Python-level ``add`` calls.
        """
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        if np.isnan(arr).any():
            raise ValueError("cannot sketch NaN")
        self.count += int(arr.size)
        lo = float(arr.min())
        hi = float(arr.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        finite = np.isfinite(arr)
        if not finite.all():
            self._inf_sum += float(arr[~finite].sum())
            arr = arr[finite]
            if arr.size == 0:
                return
        try:
            for head in _exact_chunk_heads(arr.tolist()):
                _fold_exact(self._sum_partials, head)
        except OverflowError:  # exact intermediate exceeds float range
            self._inf_sum += math.inf if hi > 0 else -math.inf
        zero = np.abs(arr) <= MIN_TRACKABLE
        self.zero_count += int(zero.sum())
        tracked = arr[~zero]
        if tracked.size == 0:
            return
        pos = tracked > 0.0
        for bins, mags in (
            (self._bins, tracked[pos]),
            (self._neg_bins, -tracked[~pos]),
        ):
            if mags.size == 0:
                continue
            keys = np.ceil(np.log(mags) / self._log_gamma).astype(np.int64)
            uniq, counts = np.unique(keys, return_counts=True)
            for key, n in zip(uniq.tolist(), counts.tolist()):
                bins[key] = bins.get(key, 0) + n
            while len(bins) > self.max_bins:
                self._collapse(bins)

    def _collapse(self, bins: dict[int, int]) -> None:
        """Merge the two lowest-magnitude bins (bounds memory)."""
        lowest = min(bins)
        count = bins.pop(lowest)
        second = min(bins)
        bins[second] += count
        self.collapsed += 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (exact: same fixed boundaries)."""
        if other.relative_error != self.relative_error:
            raise ValueError(
                f"cannot merge sketches with different error bounds: "
                f"{self.relative_error} != {other.relative_error}"
            )
        for key, count in other._bins.items():
            self._bins[key] = self._bins.get(key, 0) + count
        for key, count in other._neg_bins.items():
            self._neg_bins[key] = self._neg_bins.get(key, 0) + count
        self.zero_count += other.zero_count
        self.count += other.count
        for partial in other._sum_partials:
            _fold_exact(self._sum_partials, partial)
        self._inf_sum += other._inf_sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        while len(self._bins) > self.max_bins:
            self._collapse(self._bins)
        while len(self._neg_bins) > self.max_bins:
            self._collapse(self._neg_bins)
        return self

    @classmethod
    def identity(
        cls,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        max_bins: int = 4096,
    ) -> "QuantileSketch":
        """The merge identity: an empty sketch with the given parameters.

        ``s.merge(identity)`` leaves ``s``'s snapshot unchanged, and
        ``identity.merge(s)`` reproduces ``s`` -- the unit of the merge
        monoid (property-tested in ``tests/obs/test_merge_algebra.py``).
        """
        return cls(relative_error=relative_error, max_bins=max_bins)

    # -- queries -----------------------------------------------------------------

    @property
    def sum(self) -> float:
        """The correctly-rounded exact sum of every observation.

        Rounded once, from the exact partials -- so any partition of the
        same stream, merged in any order, reports the identical double.
        """
        if self._inf_sum != 0.0:
            return self._inf_sum
        return math.fsum(self._sum_partials)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _bucket_value(self, key: int) -> float:
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) within the error bound.

        The estimate corresponds to the sample at 0-based rank
        ``floor(q * (count - 1))`` -- ``numpy.quantile(..,
        method="lower")`` -- and is clamped into the observed
        ``[min, max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of [0,1]: {q}")
        if self.count == 0:
            return 0.0
        rank = int(q * (self.count - 1))
        cum = 0
        for key in sorted(self._neg_bins, reverse=True):
            cum += self._neg_bins[key]
            if cum > rank:
                return self._clamp(-self._bucket_value(key))
        cum += self.zero_count
        if cum > rank:
            return 0.0
        for key in sorted(self._bins):
            cum += self._bins[key]
            if cum > rank:
                return self._clamp(self._bucket_value(key))
        return self.max

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min), self.max)

    def to_dict(self) -> dict[str, Any]:
        """Deterministic, JSON-ready snapshot (sorted bins)."""
        return {
            "relative_error": self.relative_error,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "zero_count": self.zero_count,
            "collapsed": self.collapsed,
            "bins": [[k, self._bins[k]] for k in sorted(self._bins)],
            "negative_bins": [
                [k, self._neg_bins[k]] for k in sorted(self._neg_bins)
            ],
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(n={self.count}, a={self.relative_error}, "
            f"bins={len(self._bins) + len(self._neg_bins)})"
        )


class WindowedRate:
    """Event/value rate over a sliding window, in O(resolution) memory.

    The window is divided into ``resolution`` fixed-width buckets keyed by
    ``floor(t / width)``; stale buckets are evicted as time advances.
    Timestamps must be non-decreasing (they come from the sim clock).
    """

    __slots__ = ("window_s", "resolution", "_width", "_buckets", "_last_t")

    def __init__(self, window_s: float, resolution: int = 30) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive: {window_s}")
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1: {resolution}")
        self.window_s = float(window_s)
        self.resolution = resolution
        self._width = self.window_s / resolution
        #: deque of [bucket_index, event_count, value_sum], oldest first.
        self._buckets: deque[list[float]] = deque()
        self._last_t = -math.inf

    def observe(self, t: float, value: float = 1.0) -> None:
        """Record one event of weight ``value`` at sim time ``t``."""
        if t < self._last_t:
            raise ValueError(
                f"WindowedRate needs non-decreasing times: {t} < {self._last_t}"
            )
        self._last_t = t
        idx = int(t // self._width)
        if self._buckets and self._buckets[-1][0] == idx:
            bucket = self._buckets[-1]
            bucket[1] += 1
            bucket[2] += value
        else:
            # Eviction only matters when the head bucket advances: the
            # horizon is a function of idx alone, so repeat observations
            # inside one bucket cannot expire anything new.
            self._buckets.append([idx, 1, value])
            self._evict(t)

    def _evict(self, now: float) -> None:
        horizon = int(now // self._width) - self.resolution
        while self._buckets and self._buckets[0][0] <= horizon:
            self._buckets.popleft()

    def merge(self, other: "WindowedRate") -> "WindowedRate":
        """Fold ``other``'s buckets into this rate (same window geometry).

        Bucket counts and value sums combine by bucket index; the merged
        clock is the later of the two. Used when per-shard rates are
        combined at report time -- rates are live-query state, not part of
        the canonical snapshot, so plain float addition suffices here.
        """
        if (other.window_s, other.resolution) != (self.window_s, self.resolution):
            raise ValueError(
                f"cannot merge rates with different geometry: "
                f"({self.window_s}, {self.resolution}) != "
                f"({other.window_s}, {other.resolution})"
            )
        combined: dict[int, list[float]] = {}
        for idx, n, total in chain(self._buckets, other._buckets):
            bucket = combined.get(int(idx))
            if bucket is None:
                combined[int(idx)] = [idx, n, total]
            else:
                bucket[1] += n
                bucket[2] += total
        self._buckets = deque(combined[i] for i in sorted(combined))
        self._last_t = max(self._last_t, other._last_t)
        if self._last_t > -math.inf:
            self._evict(self._last_t)
        return self

    def events(self, now: float) -> int:
        """Events inside the trailing window at sim time ``now``."""
        self._evict(now)
        return int(sum(b[1] for b in self._buckets))

    def value_sum(self, now: float) -> float:
        """Summed event weights inside the trailing window."""
        self._evict(now)
        return float(sum(b[2] for b in self._buckets))

    def rate(self, now: float) -> float:
        """Events per second over the trailing window."""
        return self.events(now) / self.window_s

    def value_rate(self, now: float) -> float:
        """Summed weight per second over the trailing window (e.g. bytes/s)."""
        return self.value_sum(now) / self.window_s


def _label_suffix(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


class StreamAggregator:
    """Online sink: per-key sketches + rates over spans and metrics.

    Subscribe one aggregator to a tracer (``tracer.subscribe(agg)``) and
    its registry (``tracer.metrics.subscribe(agg)``):

    * each finished span feeds the sketch keyed ``span:<name>`` with its
      simulated duration, plus a windowed completion rate;
    * each metric event feeds ``metric:<family>`` (aggregate) and
      ``metric:<family>{k=v,...}`` (per label set, canonical order), so
      ``metric:radio.ue_throughput_mbps{cell=prod,ue=unl-gateway}`` is a
      live per-UE throughput distribution.

    ``clock`` (usually ``tracer.now_sim``) timestamps metric events, which
    carry no time of their own; span events use their own ``end_sim``.

    Wall-clock metric families (named ``*wall*``) vary run to run by
    definition; sketching them would break the byte-identity of
    same-seed :meth:`to_json` snapshots, so they are dropped unless
    ``include_wall_metrics=True``.
    """

    def __init__(
        self,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        rate_window_s: float = 600.0,
        max_bins: int = 4096,
        clock: Optional[Callable[[], float]] = None,
        include_wall_metrics: bool = False,
    ) -> None:
        self.relative_error = relative_error
        self.rate_window_s = rate_window_s
        self.max_bins = max_bins
        self.include_wall_metrics = include_wall_metrics
        self._clock = clock
        # One dict of (sketch, rate) pairs: a single lookup per event.
        self._streams: dict[str, tuple[QuantileSketch, WindowedRate]] = {}
        # Key-string memos: the same family names arrive thousands of
        # times per run, and f-string assembly would otherwise be a
        # measurable slice of the per-event cost.
        self._span_keys: dict[str, str] = {}
        self._metric_keys: dict[str, Optional[str]] = {}
        # (family, label items) -> "metric:<family>{k=v,...}" strings, so
        # the suffix sort/join runs once per distinct label set.
        self._labeled_keys: dict[Any, str] = {}

    def bind_clock(self, clock: Callable[[], float]) -> "StreamAggregator":
        """Set the sim-time source used to stamp metric events."""
        self._clock = clock
        return self

    # -- sink protocol ------------------------------------------------------------

    def on_span(self, span: Span) -> None:
        key = self._span_keys.get(span.name)
        if key is None:
            key = self._span_keys[span.name] = f"span:{span.name}"
        self._observe(key, span.duration_sim, span.end_sim)

    def on_metric(self, name: str, value: float, labels: dict[str, Any]) -> None:
        key = self._metric_keys.get(name, "")
        if key == "":  # unseen family (None is the cached "filtered" verdict)
            key = (
                None if (not self.include_wall_metrics and "wall" in name)
                else f"metric:{name}"
            )
            self._metric_keys[name] = key
        if key is None:
            return
        clock = self._clock
        now = clock() if clock is not None else 0.0
        self._observe(key, value, now)
        if labels:
            try:
                raw = (name, *labels.items())
                labeled = self._labeled_keys.get(raw)
                if labeled is None:
                    labeled = self._labeled_keys[raw] = (
                        f"{key}{_label_suffix(labels)}"
                    )
            except TypeError:  # unhashable label value
                labeled = f"{key}{_label_suffix(labels)}"
            self._observe(labeled, value, now)

    def _observe(self, key: str, value: float, t: float) -> None:
        pair = self._streams.get(key)
        if pair is None:
            pair = self._streams[key] = (
                QuantileSketch(self.relative_error, self.max_bins),
                WindowedRate(self.rate_window_s),
            )
        pair[0].add(value)
        pair[1].observe(t, value)

    def merge(self, other: "StreamAggregator") -> "StreamAggregator":
        """Fold another aggregator's streams into this one, exactly.

        Per-key sketches merge via :meth:`QuantileSketch.merge` (exact:
        fixed boundaries + exact sums), rates via
        :meth:`WindowedRate.merge`. Because sketch merging is exactly
        associative and commutative, merging the aggregators of any
        partition of a span/metric stream reproduces the unsharded
        aggregator's :meth:`to_json` snapshot byte for byte
        (property-tested in ``tests/obs/test_merge_algebra.py``).
        """
        if other.relative_error != self.relative_error:
            raise ValueError(
                f"cannot merge aggregators with different error bounds: "
                f"{self.relative_error} != {other.relative_error}"
            )
        for key, (sketch, rate) in other._streams.items():
            pair = self._streams.get(key)
            if pair is None:
                pair = self._streams[key] = (
                    QuantileSketch(self.relative_error, self.max_bins),
                    WindowedRate(self.rate_window_s),
                )
            pair[0].merge(sketch)
            pair[1].merge(rate)
        return self

    # -- queries -----------------------------------------------------------------

    def keys(self) -> list[str]:
        return sorted(self._streams)

    def sketch(self, key: str) -> QuantileSketch:
        """The sketch for ``key`` (an empty one if nothing flowed yet)."""
        found = self._streams.get(key)
        return found[0] if found is not None else QuantileSketch(self.relative_error)

    def quantile(self, key: str, q: float) -> float:
        return self.sketch(key).quantile(q)

    def rate(self, key: str, now: float) -> float:
        found = self._streams.get(key)
        return found[1].rate(now) if found is not None else 0.0

    def table(self, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)) -> list[str]:
        """Human-readable live table: count, mean, and quantiles per key."""
        header = f"{'stream':<52} {'n':>8} {'mean':>10}" + "".join(
            f" {'p' + format(q * 100, 'g'):>10}" for q in quantiles
        )
        lines = ["== streaming telemetry ==", header]
        for key in self.keys():
            sketch = self._streams[key][0]
            cells = "".join(
                f" {sketch.quantile(q):>10.4g}" for q in quantiles
            )
            lines.append(
                f"{key:<52} {sketch.count:>8} {sketch.mean:>10.4g}{cells}"
            )
        return lines

    def to_dict(self) -> dict[str, Any]:
        """Deterministic snapshot of every sketch, JSON-ready."""
        return {key: self._streams[key][0].to_dict() for key in self.keys()}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
