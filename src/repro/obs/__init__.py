"""Observability across the whole fabric: tracing, metrics, critical path.

The paper's headline result (section 4.4) is a latency budget -- ~200 ms
sensor->HPC transfer, one 64-core CFD per ~7 min, results valid >= 23 min
-- and this package is what lets the reproduction *measure* that budget
from the pipeline it actually runs instead of hand-carrying the numbers:

* :mod:`repro.obs.trace` -- :class:`Tracer` / :class:`Span`: nested spans
  stamped with both simulated time (from the engine clock) and wall time,
  with a zero-allocation no-op mode (:data:`NULL_TRACER`) when disabled;
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry`: counters, gauges,
  fixed-bucket histograms, and time series, all with labeled fan-out
  (per-UE, per-site, per-log);
* :mod:`repro.obs.critical_path` -- longest dependency chains and the
  section 4.4-style :class:`LatencyBudget` table;
* :mod:`repro.obs.export` -- JSONL and Chrome trace-event (Perfetto)
  export, deterministic on the simulated clock;
* :mod:`repro.obs.stream` -- online quantile sketches
  (:class:`QuantileSketch`, mergeable, relative-error-bounded) and
  windowed rates fed by the ``Tracer.subscribe`` /
  ``MetricsRegistry.subscribe`` seams via :class:`StreamAggregator`;
* :mod:`repro.obs.slo` -- declarative :class:`SLO` specs with
  multi-window burn-rate alerting (:class:`SLOEngine`), evaluated on sim
  time as spans finish;
* :mod:`repro.obs.recorder` -- the :class:`FlightRecorder`: an always-on
  bounded ring of recent spans/metric deltas, frozen into canonical
  JSONL dumps when an SLO breach or a chaos fault injection triggers it.

One :class:`Tracer` attaches to one engine (``tracer.attach(engine)``,
riding the engine's ``add_trace_hook`` seam) and is threaded through the
instrumented constructors; every instrumented component defaults to
:data:`NULL_TRACER`, so untraced operation costs one branch.
"""

from repro.obs.critical_path import (
    BudgetLeg,
    LatencyBudget,
    Stage,
    StageError,
    critical_path,
    longest_chain,
    staged_critical_path,
)
from repro.obs.export import (
    export_run,
    metrics_to_json,
    spans_to_chrome_trace,
    spans_to_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricObserver,
    MetricsRegistry,
    Series,
)
from repro.obs.recorder import FlightRecorder, RecorderDump
from repro.obs.slo import SLO, Alert, BurnRateRule, SLOEngine, budget_record
from repro.obs.stream import QuantileSketch, StreamAggregator, WindowedRate
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanSink,
    Tracer,
    mean_duration_sim,
)

__all__ = [
    "Tracer",
    "Span",
    "NULL_TRACER",
    "NULL_SPAN",
    "mean_duration_sim",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "DEFAULT_BUCKETS",
    "RATIO_BUCKETS",
    "BudgetLeg",
    "LatencyBudget",
    "Stage",
    "StageError",
    "critical_path",
    "longest_chain",
    "staged_critical_path",
    "spans_to_jsonl",
    "spans_to_chrome_trace",
    "metrics_to_json",
    "export_run",
    "SpanSink",
    "MetricObserver",
    "QuantileSketch",
    "WindowedRate",
    "StreamAggregator",
    "SLO",
    "SLOEngine",
    "BurnRateRule",
    "Alert",
    "budget_record",
    "FlightRecorder",
    "RecorderDump",
]
