"""Critical-path extraction over completed span trees.

Two extractors, both returning a :class:`LatencyBudget` (the section
4.4-style table of legs):

* :func:`critical_path` -- follow explicit ``cause`` links backwards from a
  terminal span. This is exact where instrumented code records causality
  (e.g. the fabric's CFD trigger chain).
* :func:`staged_critical_path` -- reconstruct the chain from a declared
  stage order (:class:`Stage` list) when causality crosses module
  boundaries that don't pass span handles around: for each stage, pick the
  latest matching span that completed before the downstream stage began.
  This is how the Fig. 3 budget (radio TX -> CSPOT append -> Laminar fire
  -> alert fetch -> pilot dispatch -> CFD solve -> raster) is assembled
  from a real traced run.

:func:`longest_chain` is the generic analysis: the cause-linked chain with
the greatest total simulated duration anywhere in the span set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.obs.trace import Span

#: Slack allowed when deciding "completed before" across stages, in
#: simulated seconds. Zero-duration spans recorded at the same instant as
#: their successor must still chain.
_EPS = 1e-9


@dataclass(frozen=True)
class BudgetLeg:
    """One leg of a latency budget."""

    stage: str
    span_name: str
    start_sim: float
    duration_s: float
    #: Gap between the previous leg's end and this leg's start (queueing,
    #: polling delay, duty-cycle alignment...). Part of the end-to-end
    #: latency but not of any instrumented operation.
    wait_before_s: float = 0.0
    span_id: int = 0
    category: str = ""

    @property
    def end_sim(self) -> float:
        return self.start_sim + self.duration_s


@dataclass
class LatencyBudget:
    """An ordered chain of legs with §4.4-style rendering."""

    legs: list[BudgetLeg] = field(default_factory=list)
    title: str = "critical path"

    @property
    def total_s(self) -> float:
        """End-to-end span of the chain (first start to last end)."""
        if not self.legs:
            return 0.0
        return self.legs[-1].end_sim - self.legs[0].start_sim

    @property
    def active_s(self) -> float:
        """Sum of leg durations (total minus waits)."""
        return sum(leg.duration_s for leg in self.legs)

    def leg(self, stage: str) -> Optional[BudgetLeg]:
        for entry in self.legs:
            if entry.stage == stage:
                return entry
        return None

    def duration_of(self, stage: str) -> float:
        entry = self.leg(stage)
        return entry.duration_s if entry is not None else 0.0

    def rows(self) -> list[str]:
        """Human-readable latency-budget table lines."""
        if not self.legs:
            return [f"== {self.title} ==", "(no legs)"]
        width = max(max(len(leg.stage) for leg in self.legs), len("total")) + 2
        lines = [
            f"== {self.title} ==",
            f"{'leg':<{width}} {'start (s)':>12} {'wait':>12} {'duration':>12}",
        ]
        for leg in self.legs:
            lines.append(
                f"{leg.stage:<{width}} {leg.start_sim:>12.3f} "
                f"{_fmt_dur(leg.wait_before_s):>12} {_fmt_dur(leg.duration_s):>12}"
            )
        lines.append(
            f"{'total':<{width}} {self.legs[0].start_sim:>12.3f} "
            f"{_fmt_dur(self.total_s - self.active_s):>12} "
            f"{_fmt_dur(self.total_s):>12}"
        )
        return lines

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (artifact trail for benchmarks)."""
        return {
            "title": self.title,
            "total_s": self.total_s,
            "active_s": self.active_s,
            "legs": [
                {
                    "stage": leg.stage,
                    "span": leg.span_name,
                    "span_id": leg.span_id,
                    "start_sim_s": leg.start_sim,
                    "wait_before_s": leg.wait_before_s,
                    "duration_s": leg.duration_s,
                }
                for leg in self.legs
            ],
        }


def _fmt_dur(seconds: float) -> str:
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f} min"
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1e3:.1f} ms"


def _legs_from_chain(chain: list[Span]) -> list[BudgetLeg]:
    legs: list[BudgetLeg] = []
    prev_end: Optional[float] = None
    for span in chain:
        wait = max(0.0, span.start_sim - prev_end) if prev_end is not None else 0.0
        legs.append(
            BudgetLeg(
                stage=span.name,
                span_name=span.name,
                start_sim=span.start_sim,
                duration_s=span.duration_sim,
                wait_before_s=wait,
                span_id=span.span_id,
                category=span.category,
            )
        )
        prev_end = span.end_sim
    return legs


# -- cause-link extraction ------------------------------------------------------


def critical_path(
    spans: Iterable[Span],
    terminal: Optional[Span] = None,
    title: str = "critical path",
) -> LatencyBudget:
    """Walk ``cause`` links backwards from ``terminal`` (default: the
    finished span with the latest simulated end)."""
    finished = [s for s in spans if s.finished]
    if not finished:
        return LatencyBudget(title=title)
    by_id = {s.span_id: s for s in finished}
    if terminal is None:
        terminal = max(finished, key=lambda s: (s.end_sim, s.span_id))
    chain = [terminal]
    seen = {terminal.span_id}
    cur = terminal
    while cur.cause_id is not None:
        nxt = by_id.get(cur.cause_id)
        if nxt is None or nxt.span_id in seen:  # dangling or cyclic link
            break
        chain.append(nxt)
        seen.add(nxt.span_id)
        cur = nxt
    chain.reverse()
    return LatencyBudget(legs=_legs_from_chain(chain), title=title)


def longest_chain(spans: Iterable[Span]) -> LatencyBudget:
    """The cause-linked chain with the greatest total simulated duration.

    Dynamic programming over the cause DAG (each span has at most one
    cause, so chains are simple paths); ties break on span id for
    determinism.
    """
    finished = sorted(
        (s for s in spans if s.finished), key=lambda s: (s.start_sim, s.span_id)
    )
    if not finished:
        return LatencyBudget(title="longest chain")
    by_id = {s.span_id: s for s in finished}
    best: dict[int, float] = {}

    def weight(span: Span) -> float:
        cached = best.get(span.span_id)
        if cached is not None:
            return cached
        total = span.duration_sim
        cause = by_id.get(span.cause_id) if span.cause_id is not None else None
        if cause is not None and cause.span_id != span.span_id:
            total += weight(cause)
        best[span.span_id] = total
        return total

    terminal = max(finished, key=lambda s: (weight(s), -s.span_id))
    return critical_path(finished, terminal=terminal, title="longest chain")


# -- staged extraction --------------------------------------------------------------


@dataclass(frozen=True)
class Stage:
    """One stage of a declared pipeline order.

    Attributes
    ----------
    name:
        Span name to match.
    label:
        Stage label shown in the budget table (defaults to ``name``).
    where:
        Optional extra predicate on the candidate span.
    required:
        When ``True``, a missing stage raises instead of being skipped --
        use for stages whose absence means the pipeline never ran.
    """

    name: str
    label: str = ""
    where: Optional[Callable[[Span], bool]] = None
    required: bool = False


class StageError(ValueError):
    """A required stage has no matching span."""


def staged_critical_path(
    spans: Iterable[Span],
    stages: list[Stage],
    terminal: Optional[Span] = None,
    title: str = "critical path",
) -> LatencyBudget:
    """Assemble a causal chain from a declared stage order.

    Walks ``stages`` backwards: the last stage anchors on ``terminal`` (or
    the latest matching span), and each earlier stage picks the latest
    matching span that *completed* no later than the downstream stage's
    start (within a tolerance for zero-duration spans). The result is a
    real happens-before chain reconstructed purely from recorded spans.
    """
    if not stages:
        raise ValueError("need at least one stage")
    finished = sorted(
        (s for s in spans if s.finished), key=lambda s: (s.start_sim, s.span_id)
    )

    def matches(stage: Stage, span: Span) -> bool:
        return span.name == stage.name and (
            stage.where is None or stage.where(span)
        )

    chain: list[Span] = []
    horizon: Optional[float] = None
    for stage in reversed(stages):
        if horizon is None and terminal is not None and stage is stages[-1]:
            if not matches(stage, terminal):
                raise StageError(
                    f"terminal span {terminal.name!r} does not match final "
                    f"stage {stage.name!r}"
                )
            pick: Optional[Span] = terminal
        else:
            candidates = [
                s for s in finished
                if matches(stage, s)
                and (horizon is None or s.end_sim <= horizon + _EPS)
            ]
            pick = max(
                candidates, key=lambda s: (s.end_sim, s.span_id), default=None
            )
        if pick is None:
            if stage.required:
                raise StageError(
                    f"required stage {stage.name!r} has no completed span "
                    f"before t={horizon}"
                )
            continue
        chain.append(pick)
        horizon = pick.start_sim
    chain.reverse()

    legs = _legs_from_chain(chain)
    # Apply stage labels (legs default to span names).
    labelled: list[Stage] = []
    by_name: dict[str, str] = {s.name: (s.label or s.name) for s in stages}
    for leg in legs:
        labelled.append(
            BudgetLeg(
                stage=by_name.get(leg.span_name, leg.span_name),
                span_name=leg.span_name,
                start_sim=leg.start_sim,
                duration_s=leg.duration_s,
                wait_before_s=leg.wait_before_s,
                span_id=leg.span_id,
                category=leg.category,
            )
        )
    return LatencyBudget(legs=labelled, title=title)
