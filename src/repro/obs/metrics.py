"""Metric primitives: counters, gauges, histograms, and time series.

A :class:`MetricsRegistry` holds named metric *families*; each family holds
one value (or distribution) per **label set**, so one ``radio.ue_throughput``
series fans out per-UE, one ``cspot.append.attempts`` counter fans out
per-log, and so on -- the Prometheus data model, sized for an in-process
simulation run.

Determinism: label keys are sorted tuples and :meth:`MetricsRegistry.collect`
emits families and label sets in sorted order, so two identical runs produce
byte-identical metric snapshots.

Streaming: :meth:`MetricsRegistry.subscribe` registers a
:class:`MetricObserver` that sees every counter increment, histogram
observation, and series point as it happens -- the seam the
:mod:`repro.obs.stream` sketches and the :mod:`repro.obs.recorder` ride.
The unobserved cost is one truthiness check on the (empty) observer list.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Optional, Protocol

LabelKey = tuple[tuple[str, str], ...]


class MetricObserver(Protocol):
    """An online consumer of metric events (see :meth:`MetricsRegistry.subscribe`)."""

    def on_metric(
        self, name: str, value: float, labels: dict[str, Any]
    ) -> None: ...  # pragma: no cover - protocol


def _label_key(labels: dict[str, Any]) -> LabelKey:
    """Normalize a label dict to a hashable, sorted, string-valued key."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Family:
    """Common storage/iteration for one named metric family."""

    kind = "abstract"

    def __init__(
        self,
        name: str,
        help: str = "",
        observers: Optional[list[MetricObserver]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._data: dict[LabelKey, Any] = {}
        # Canonical-key memo: label dicts repeat per call site, and the
        # sort + str() in _label_key would otherwise run on every event.
        # Bounded by distinct label combinations, like _data itself.
        self._key_memo: dict[Any, LabelKey] = {}
        # Shared *reference* to the owning registry's observer list, so
        # subscriptions made after this family was created still reach it.
        # Families constructed standalone broadcast to nobody.
        self._observers: Optional[list[MetricObserver]] = observers

    def _labels_key(self, labels: dict[str, Any]) -> LabelKey:
        if not labels:
            return ()
        try:
            raw = tuple(labels.items())
            key = self._key_memo.get(raw)
            if key is None:
                key = self._key_memo[raw] = _label_key(labels)
            return key
        except TypeError:  # unhashable label value: canonicalize directly
            return _label_key(labels)

    def _publish(self, value: float, labels: dict[str, Any]) -> None:
        if self._observers:
            for observer in self._observers:
                observer.on_metric(self.name, value, labels)

    def label_sets(self) -> list[LabelKey]:
        return sorted(self._data)

    def _labels_to_dict(self, key: LabelKey) -> dict[str, str]:
        return dict(key)


class Counter(_Family):
    """A monotonically increasing count (events, bytes, retries...)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        key = self._labels_key(labels)
        self._data[key] = self._data.get(key, 0.0) + amount
        observers = self._observers
        if observers:
            for observer in observers:
                observer.on_metric(self.name, amount, labels)

    def value(self, **labels: Any) -> float:
        return float(self._data.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum across every label set."""
        return float(sum(self._data.values()))

    def collect(self) -> list[dict[str, Any]]:
        return [
            {"labels": self._labels_to_dict(k), "value": self._data[k]}
            for k in self.label_sets()
        ]


class Gauge(_Family):
    """A value that goes up and down (queue depth, nodes available...)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._data[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._data[key] = self._data.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return float(self._data.get(_label_key(labels), 0.0))

    def collect(self) -> list[dict[str, Any]]:
        return [
            {"labels": self._labels_to_dict(k), "value": self._data[k]}
            for k in self.label_sets()
        ]


#: Default histogram buckets: latencies from 1 ms to ~2 min (seconds).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Buckets for ratios in [0, 1] (PRB utilization, hit rates).
RATIO_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


class _HistogramState:
    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 = overflow bucket
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(_Family):
    """Fixed-bucket histogram of observed values.

    Buckets are *upper bounds* (inclusive); values above the last bound
    land in the overflow bucket. Fixed buckets keep observation O(log B)
    with no allocation, which is what a per-TTI hot loop needs.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        observers: Optional[list[MetricObserver]] = None,
    ) -> None:
        super().__init__(name, help, observers)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {self.name!r}: need at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {self.name!r}: buckets must be strictly increasing"
            )
        self.buckets = bounds
        # The object the caller passed, for the registry's identity-based
        # fast path on the create-or-get seam (call sites reuse one tuple).
        self._buckets_src = buckets

    def observe(self, value: float, **labels: Any) -> None:
        key = self._labels_key(labels)
        state = self._data.get(key)
        if state is None:
            state = self._data[key] = _HistogramState(len(self.buckets))
        state.counts[bisect.bisect_left(self.buckets, value)] += 1
        state.sum += value
        state.count += 1
        if value < state.min:
            state.min = value
        if value > state.max:
            state.max = value
        observers = self._observers
        if observers:
            for observer in observers:
                observer.on_metric(self.name, value, labels)

    # -- per-label-set accessors ----------------------------------------------

    def _state(self, labels: dict[str, Any]) -> Optional[_HistogramState]:
        return self._data.get(_label_key(labels))

    def count(self, **labels: Any) -> int:
        s = self._state(labels)
        return s.count if s is not None else 0

    def sum(self, **labels: Any) -> float:
        s = self._state(labels)
        return s.sum if s is not None else 0.0

    def mean(self, **labels: Any) -> float:
        s = self._state(labels)
        return s.sum / s.count if s is not None and s.count else 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        containing the q-th observation; the overflow bucket reports the
        observed max)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of [0,1]: {q}")
        s = self._state(labels)
        if s is None or s.count == 0:
            return 0.0
        rank = q * s.count
        seen = 0
        for i, c in enumerate(s.counts):
            seen += c
            if seen >= rank and c:
                return self.buckets[i] if i < len(self.buckets) else s.max
        return s.max

    def collect(self) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        for key in self.label_sets():
            s = self._data[key]
            out.append({
                "labels": self._labels_to_dict(key),
                "count": s.count,
                "sum": s.sum,
                "min": s.min if s.count else 0.0,
                "max": s.max if s.count else 0.0,
                "buckets": [
                    {"le": b, "count": c}
                    for b, c in zip(self.buckets, s.counts)
                ] + [{"le": "inf", "count": s.counts[-1]}],
            })
        return out


class Series(_Family):
    """An append-only ``(t, value)`` time series per label set.

    The substrate for "per-UE throughput over the run" / "PRB utilization
    per TTI" style plots. ``maxlen`` bounds memory for long-horizon runs
    by dropping the oldest points (the aggregates in a sibling histogram
    are the unbounded record).
    """

    kind = "series"

    def __init__(
        self, name: str, help: str = "", maxlen: Optional[int] = None,
        observers: Optional[list[MetricObserver]] = None,
    ) -> None:
        super().__init__(name, help, observers)
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"series {self.name!r}: maxlen must be >= 1")
        self.maxlen = maxlen

    def append(self, t: float, value: float, **labels: Any) -> None:
        key = self._labels_key(labels)
        points = self._data.get(key)
        if points is None:
            points = self._data[key] = []
        points.append((float(t), float(value)))
        if self.maxlen is not None and len(points) > self.maxlen:
            del points[: len(points) - self.maxlen]
        observers = self._observers
        if observers:
            value = float(value)
            for observer in observers:
                observer.on_metric(self.name, value, labels)

    def extend(
        self,
        ts: "Iterable[float]",
        values: "Iterable[float]",
        **labels: Any,
    ) -> None:
        """Bulk :meth:`append`: one call for a whole sample block.

        Semantically identical to appending each ``(t, value)`` pair in
        order -- same float casts, same oldest-first ``maxlen`` trim, same
        per-point observer notifications -- but pays the dict lookup and
        trim once instead of per point (the vectorized radio path emits
        thousands of points per test).
        """
        key = self._labels_key(labels)
        points = self._data.get(key)
        if points is None:
            points = self._data[key] = []
        new = [(float(t), float(v)) for t, v in zip(ts, values)]
        points.extend(new)
        if self.maxlen is not None and len(points) > self.maxlen:
            del points[: len(points) - self.maxlen]
        observers = self._observers
        if observers:
            for _, v in new:
                for observer in observers:
                    observer.on_metric(self.name, v, labels)

    def points(self, **labels: Any) -> list[tuple[float, float]]:
        return list(self._data.get(_label_key(labels), ()))

    def collect(self) -> list[dict[str, Any]]:
        return [
            {"labels": self._labels_to_dict(k), "points": list(self._data[k])}
            for k in self.label_sets()
        ]


class MetricsRegistry:
    """Named metric families with create-or-get semantics.

    Asking for an existing name with a different kind (or different
    histogram buckets) is a programming error and raises -- silent
    divergence between two call sites would corrupt the series.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._observers: list[MetricObserver] = []

    def subscribe(self, observer: MetricObserver) -> MetricObserver:
        """Register an online consumer of metric events.

        ``observer.on_metric(name, value, labels)`` fires on every
        counter increment, histogram observation, and series point, in
        the order instrumentation emits them (deterministic under the
        sim clock). Observers must not write metrics back into this
        registry.
        """
        self._observers.append(observer)
        return observer

    @staticmethod
    def _kind_error(name: str, fam: _Family, kind: type) -> TypeError:
        return TypeError(
            f"metric {name!r} already registered as {fam.kind}, "
            f"not {kind.kind}"
        )

    def counter(self, name: str, help: str = "") -> Counter:
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = Counter(name, help, self._observers)
        elif not isinstance(fam, Counter):
            raise self._kind_error(name, fam, Counter)
        return fam

    def gauge(self, name: str, help: str = "") -> Gauge:
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = Gauge(name, help)
        elif not isinstance(fam, Gauge):
            raise self._kind_error(name, fam, Gauge)
        return fam

    def histogram(
        self, name: str, help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = Histogram(
                name, help, buckets, self._observers
            )
            return fam
        if not isinstance(fam, Histogram):
            raise self._kind_error(name, fam, Histogram)
        # Identity first: instrument seams pass the same bucket tuple on
        # every call, so the per-element comparison runs once per family.
        if buckets is not fam._buckets_src and (
            fam.buckets != tuple(float(b) for b in buckets)
        ):
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return fam

    def series(
        self, name: str, help: str = "", maxlen: Optional[int] = None
    ) -> Series:
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = Series(
                name, help, maxlen, self._observers
            )
        elif not isinstance(fam, Series):
            raise self._kind_error(name, fam, Series)
        return fam

    def names(self) -> list[str]:
        return sorted(self._families)

    def get(self, name: str) -> _Family:
        return self._families[name]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def collect(self) -> dict[str, dict[str, Any]]:
        """Deterministic snapshot of every family, JSON-ready."""
        return {
            name: {
                "kind": fam.kind,
                "help": fam.help,
                "data": fam.collect(),
            }
            for name, fam in sorted(self._families.items())
        }
