"""Trace and metric export: JSONL and Chrome trace-event (Perfetto) formats.

* :func:`spans_to_jsonl` -- one JSON object per span, for ad-hoc analysis
  (``jq``, pandas). ``include_wall=False`` drops the wall-clock stamps so
  two same-seed runs export byte-identical files (the determinism guard).
* :func:`spans_to_chrome_trace` -- the Chrome trace-event JSON format,
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  The simulated clock maps to trace microseconds; each span category gets
  its own named track, so the whole fabric run reads as a timeline:
  telemetry appends, Laminar fires, pilot waits, CFD solves.
* :func:`metrics_to_json` -- deterministic registry snapshot.

All writers accept a path (written UTF-8) and return the serialized text,
so tests can assert on bytes without touching the filesystem.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer


def _sorted_finished(spans: Iterable[Span]) -> list[Span]:
    return sorted(
        (s for s in spans if s.finished),
        key=lambda s: (s.start_sim, s.span_id),
    )


def _write(text: str, path: Optional[str]) -> str:
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def _jsonable_value(value: Any) -> Any:
    """One attribute value coerced to a JSON-stable primitive.

    Finite numbers and strings pass through; non-finite floats become
    their ``repr`` (``json.dumps`` would otherwise emit invalid ``NaN``
    tokens); numpy scalars unwrap through ``.item()`` (``np.int64`` is
    *not* an ``int`` subclass); everything else becomes its ``repr``.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):  # includes np.float64 (a float subclass)
        # repr(float(...)) so np.float64(nan) and nan serialize identically.
        return float(value) if math.isfinite(value) else repr(float(value))
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        try:
            unwrapped = item()
        except Exception:
            return repr(value)
        if unwrapped is None or isinstance(unwrapped, (str, int, bool, float)):
            return _jsonable_value(unwrapped)
    return repr(value)


def _jsonable_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    """Attributes coerced to JSON-stable primitives, key-sorted."""
    return {key: _jsonable_value(attrs[key]) for key in sorted(attrs)}


def spans_to_jsonl(
    spans: Iterable[Span],
    path: Optional[str] = None,
    include_wall: bool = True,
) -> str:
    """Serialize finished spans as JSON Lines, ordered by (start_sim, id)."""
    lines: list[str] = []
    for s in _sorted_finished(spans):
        record = {
            "id": s.span_id,
            "name": s.name,
            "category": s.category,
            "parent_id": s.parent_id,
            "cause_id": s.cause_id,
            "start_sim_s": s.start_sim,
            "end_sim_s": s.end_sim,
        }
        if include_wall:
            record["start_wall_s"] = s.start_wall
            record["end_wall_s"] = s.end_wall
        if s.attrs:
            record["attrs"] = _jsonable_attrs(s.attrs)
        lines.append(json.dumps(record, separators=(",", ":")))
    return _write("\n".join(lines) + ("\n" if lines else ""), path)


def spans_to_chrome_trace(
    spans: Iterable[Span],
    path: Optional[str] = None,
    clock: str = "sim",
) -> str:
    """Serialize finished spans in Chrome trace-event JSON (Perfetto-loadable).

    ``clock="sim"`` (default) places spans on the simulated timeline --
    deterministic across same-seed runs; ``clock="wall"`` places them on
    the wall-clock timeline for profiling the reproduction itself.
    """
    if clock not in ("sim", "wall"):
        raise ValueError(f"clock must be 'sim' or 'wall': {clock!r}")
    ordered = _sorted_finished(spans)
    categories = sorted({s.category or "uncategorized" for s in ordered})
    tids = {cat: i + 1 for i, cat in enumerate(categories)}

    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": cat},
        }
        for cat, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    if clock == "wall" and ordered:
        origin = min(s.start_wall for s in ordered)
    else:
        origin = 0.0
    for s in ordered:
        if clock == "sim":
            start, dur = s.start_sim, s.duration_sim
        else:
            start, dur = s.start_wall - origin, s.duration_wall
        args = {"span_id": s.span_id}
        if s.cause_id is not None:
            args["cause_id"] = s.cause_id
        if s.attrs:
            args.update(_jsonable_attrs(s.attrs))
        events.append({
            "ph": "X",
            "pid": 1,
            "tid": tids[s.category or "uncategorized"],
            "name": s.name,
            "cat": s.category or "uncategorized",
            "ts": round(start * 1e6, 3),
            "dur": round(dur * 1e6, 3),
            "args": args,
        })
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock, "producer": "repro.obs"},
    }
    return _write(json.dumps(doc, separators=(",", ":")), path)


def metrics_to_json(
    registry: MetricsRegistry, path: Optional[str] = None
) -> str:
    """Deterministic JSON snapshot of a metrics registry."""
    return _write(
        json.dumps(registry.collect(), indent=2, sort_keys=True), path
    )


def export_run(
    tracer: Tracer,
    directory: str,
    prefix: str = "run",
    include_wall: bool = True,
) -> dict[str, str]:
    """Write the full observability record of a run to ``directory``.

    Emits ``<prefix>_spans.jsonl``, ``<prefix>_trace.json`` (Perfetto),
    and ``<prefix>_metrics.json``; returns ``{kind: path}``.
    """
    import os

    os.makedirs(directory, exist_ok=True)
    spans = tracer.finished_spans()
    paths = {
        "spans": os.path.join(directory, f"{prefix}_spans.jsonl"),
        "trace": os.path.join(directory, f"{prefix}_trace.json"),
        "metrics": os.path.join(directory, f"{prefix}_metrics.json"),
    }
    spans_to_jsonl(spans, paths["spans"], include_wall=include_wall)
    spans_to_chrome_trace(spans, paths["trace"], clock="sim")
    metrics_to_json(tracer.metrics, paths["metrics"])
    return paths
