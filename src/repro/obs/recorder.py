"""Flight recorder: always-on bounded capture, dumped on trigger.

Long-horizon runs cannot keep every span (O(run length) memory), but the
spans you need most are the ones *just before* something broke. The
flight recorder resolves the tension the way avionics do: a fixed-size
ring of the most recent spans and metric deltas is always recording at
negligible cost, and a **trigger** -- an SLO burn-rate breach
(:meth:`~repro.obs.slo.SLOEngine.on_breach`) or a :mod:`repro.chaos`
fault injection -- freezes the ring into an immutable
:class:`RecorderDump` holding the local trace context of the incident.

Dumps are canonical: sim-time fields only (wall stamps vary run to run),
sorted keys, compact separators -- two same-seed runs triggered at the
same sim instants produce **byte-identical** JSONL dumps, which is how
``tests/chaos`` pins them and how ``ResilienceReport`` can embed them.

Memory is fixed: the ring holds references to spans the tracer already
created (zero per-span allocation on the hot path); serialization cost
is paid only at snapshot time.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.export import _jsonable_attrs
from repro.obs.trace import Span

#: Default ring capacities: enough context around an incident without
#: rivaling the full span record.
DEFAULT_SPAN_CAPACITY = 512
DEFAULT_METRIC_CAPACITY = 2048


def _span_record(span: Span) -> dict[str, Any]:
    """Sim-time-only canonical view of one span (no wall stamps)."""
    return {
        "span_id": span.span_id,
        "name": span.name,
        "category": span.category,
        "parent_id": span.parent_id,
        "cause_id": span.cause_id,
        "start_sim": span.start_sim,
        "end_sim": span.end_sim,
        "attrs": _jsonable_attrs(span.attrs),
    }


@dataclass(frozen=True)
class RecorderDump:
    """One frozen snapshot of the recorder rings.

    ``seq`` is the snapshot's ordinal within the run (deterministic);
    ``trigger`` names the cause (``"chaos:<fault>"``, ``"slo:<name>/<rule>"``,
    or ``"manual"``); ``t`` is the sim time of the trigger.
    """

    seq: int
    trigger: str
    t: float
    spans: tuple[dict[str, Any], ...]
    metrics: tuple[dict[str, Any], ...]
    spans_seen: int
    metrics_seen: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "trigger": self.trigger,
            "t": self.t,
            "spans_seen": self.spans_seen,
            "metrics_seen": self.metrics_seen,
            "spans": list(self.spans),
            "metrics": list(self.metrics),
        }

    def to_jsonl(self) -> str:
        """Canonical JSONL: a header line, then one line per span, then
        one line per metric delta (oldest first)."""
        header = {
            "record": "header",
            "seq": self.seq,
            "trigger": self.trigger,
            "t": self.t,
            "spans": len(self.spans),
            "metrics": len(self.metrics),
            "spans_seen": self.spans_seen,
            "metrics_seen": self.metrics_seen,
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for span in self.spans:
            lines.append(json.dumps(
                {"record": "span", **span},
                sort_keys=True, separators=(",", ":"),
            ))
        for metric in self.metrics:
            lines.append(json.dumps(
                {"record": "metric", **metric},
                sort_keys=True, separators=(",", ":"),
            ))
        return "\n".join(lines) + "\n"

    def write(self, path: Any) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())


class FlightRecorder:
    """Bounded always-on ring of recent spans and metric deltas.

    Implements both sink protocols -- subscribe one recorder to the
    tracer (``tracer.subscribe(recorder)``) *and* its registry
    (``tracer.metrics.subscribe(recorder)``); bind the sim clock with
    ``recorder.bind_clock(tracer.now_sim)`` so metric deltas (which
    carry no timestamp of their own) are stamped in sim time.

    :meth:`snapshot` freezes the rings into a :class:`RecorderDump`
    (appended to :attr:`dumps`); the rings keep recording afterwards.
    """

    def __init__(
        self,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
        metric_capacity: int = DEFAULT_METRIC_CAPACITY,
        clock: Optional[Callable[[], float]] = None,
        include_wall_metrics: bool = False,
    ) -> None:
        if span_capacity < 1:
            raise ValueError(f"span_capacity must be >= 1: {span_capacity}")
        if metric_capacity < 1:
            raise ValueError(f"metric_capacity must be >= 1: {metric_capacity}")
        self.span_capacity = span_capacity
        self.metric_capacity = metric_capacity
        self._clock = clock
        # Wall-clock observations (families named "*wall*") vary run to
        # run by definition; recording them would break the byte-identity
        # of same-seed dumps, so they are dropped unless asked for.
        self.include_wall_metrics = include_wall_metrics
        # Span *references* -- the tracer owns the objects; serialization
        # is deferred to snapshot time so the hot path allocates nothing.
        self._spans: deque[Span] = deque(maxlen=span_capacity)
        # (t, name, value, canonical-label-items) tuples.
        self._metrics: deque[tuple[float, str, float, tuple[tuple[str, str], ...]]]
        self._metrics = deque(maxlen=metric_capacity)
        # Per-family keep/drop verdicts ("wall" filter), cached by name.
        self._name_kept: dict[str, bool] = {}
        # Canonical-label memo: label dicts repeat per call site; sorting
        # and str()-ing them on every event would dominate the ring append.
        self._label_memo: dict[Any, tuple[tuple[str, str], ...]] = {}
        self.spans_seen = 0
        self.metrics_seen = 0
        self.dumps: list[RecorderDump] = []

    def bind_clock(self, clock: Callable[[], float]) -> "FlightRecorder":
        """Set the sim-time source used to stamp metric deltas."""
        self._clock = clock
        return self

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- sink protocols -----------------------------------------------------------

    def on_span(self, span: Span) -> None:
        self.spans_seen += 1
        self._spans.append(span)

    def on_metric(self, name: str, value: float, labels: dict[str, Any]) -> None:
        kept = self._name_kept.get(name)
        if kept is None:
            kept = self.include_wall_metrics or "wall" not in name
            self._name_kept[name] = kept
        if not kept:
            return
        self.metrics_seen += 1
        key: tuple[tuple[str, str], ...] = ()
        if labels:
            try:
                raw = tuple(labels.items())
                cached = self._label_memo.get(raw)
                if cached is None:
                    cached = self._label_memo[raw] = tuple(
                        sorted((k, str(v)) for k, v in labels.items())
                    )
                key = cached
            except TypeError:  # unhashable label value
                key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        clock = self._clock
        self._metrics.append(
            (clock() if clock is not None else 0.0, name, float(value), key)
        )

    # -- triggering ---------------------------------------------------------------

    def snapshot(self, trigger: str = "manual") -> RecorderDump:
        """Freeze the rings into an immutable dump (and keep recording)."""
        dump = RecorderDump(
            seq=len(self.dumps) + 1,
            trigger=trigger,
            t=self._now(),
            spans=tuple(_span_record(s) for s in self._spans),
            metrics=tuple(
                {"t": t, "name": name, "value": value, "labels": dict(key)}
                for t, name, value, key in self._metrics
            ),
            spans_seen=self.spans_seen,
            metrics_seen=self.metrics_seen,
        )
        self.dumps.append(dump)
        return dump

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlightRecorder(spans={len(self._spans)}/{self.span_capacity}, "
            f"metrics={len(self._metrics)}/{self.metric_capacity}, "
            f"dumps={len(self.dumps)})"
        )


__all__ = [
    "DEFAULT_METRIC_CAPACITY",
    "DEFAULT_SPAN_CAPACITY",
    "FlightRecorder",
    "RecorderDump",
]
