"""Declarative SLOs with multi-window burn-rate alerting, on sim time.

The paper's Section 4.4 budget is a set of per-leg latency objectives
(sensor->edge, edge->HPC, solver, return). This module turns each leg
into a monitored **SLO**: a target ("99.x% of ``cspot.append`` spans
finish within 0.25 s over a 1 h window") plus an **error budget** (the
tolerated bad fraction). Alerting follows the standard multi-window
burn-rate scheme: a *fast* rule (burn >= 5x over a short window) catches
sudden outages in minutes, a *slow* rule (burn >= 1x over the full
window) catches slow leaks that would exhaust the budget by window end.

Everything is evaluated **on simulated time**, at the instant each span
finishes: no wall clocks, no polling threads. Two same-seed runs process
identical spans at identical sim instants, so they produce byte-identical
alert timelines (:meth:`SLOEngine.timeline_json`) -- the determinism
guard in ``tests/chaos`` pins this.

An engine is a :class:`~repro.obs.trace.SpanSink`::

    engine = tracer.subscribe(SLOEngine(fig3_slos()))
    engine.on_breach(lambda alert: recorder.snapshot(f"slo:{alert.slo}"))
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.stream import WindowedRate
from repro.obs.trace import Span

#: The canonical fast/slow burn-rate pair: page on a 5x burn sustained for
#: 5 minutes, ticket on a 1x burn sustained over the whole window (the
#: slow rule's window is resolved against each SLO's own window_s).
FAST_BURN_FACTOR = 5.0
FAST_BURN_WINDOW_S = 300.0
SLOW_BURN_FACTOR = 1.0


@dataclass(frozen=True)
class BurnRateRule:
    """One alerting rule: fire when burn rate >= factor over window_s.

    Burn rate is ``(bad fraction over the rule window) / budget`` -- 1.0
    means the budget is being consumed exactly at the rate that exhausts
    it by the end of the SLO window; 5.0 means five times faster.
    ``window_s=0`` is the "inherit" sentinel: the rule's window resolves
    to the owning SLO's ``window_s``. ``min_events`` suppresses verdicts
    from statistically empty windows.
    """

    name: str
    factor: float
    window_s: float
    min_events: int = 1

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"rule {self.name!r}: factor must be positive")
        if self.window_s < 0:
            raise ValueError(f"rule {self.name!r}: window_s must be >= 0")


@dataclass(frozen=True)
class SLO:
    """A declarative objective over one span population.

    A finished span named ``span_name`` is **bad** when its simulated
    duration exceeds ``objective_s`` or it carries an ``error`` attribute
    (failed attempts count against the budget even when they are fast).
    ``budget`` is the tolerated bad fraction over ``window_s`` (0.05 =
    "95% of events good"). ``rules`` defaults to the canonical fast/slow
    pair; a rule with ``window_s=0`` is resolved to this SLO's window.
    """

    name: str
    span_name: str
    objective_s: float
    window_s: float = 3600.0
    budget: float = 0.05
    rules: tuple[BurnRateRule, ...] = (
        BurnRateRule("fast", FAST_BURN_FACTOR, FAST_BURN_WINDOW_S),
        BurnRateRule("slow", SLOW_BURN_FACTOR, 0.0),
    )

    def __post_init__(self) -> None:
        if self.objective_s <= 0:
            raise ValueError(f"SLO {self.name!r}: objective_s must be positive")
        if not 0.0 < self.budget < 1.0:
            raise ValueError(f"SLO {self.name!r}: budget must be in (0, 1)")
        if self.window_s <= 0:
            raise ValueError(f"SLO {self.name!r}: window_s must be positive")

    def is_bad(self, span: Span) -> bool:
        return span.duration_sim > self.objective_s or "error" in span.attrs


@dataclass(frozen=True)
class Alert:
    """One alert transition ("fire" or "resolve") on an SLO rule."""

    t: float
    slo: str
    rule: str
    event: str  # "fire" | "resolve"
    burn: float
    bad: int
    total: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "t": self.t,
            "slo": self.slo,
            "rule": self.rule,
            "event": self.event,
            "burn": self.burn,
            "bad": self.bad,
            "total": self.total,
        }


class _RuleState:
    """Sliding good/bad window + firing flag for one (SLO, rule) pair."""

    __slots__ = ("rule", "window", "firing")

    def __init__(self, rule: BurnRateRule, window_s: float) -> None:
        self.rule = rule
        # One window carries both counts: events() is the total, the
        # observed weight (1.0 for bad, 0.0 for good) sums to bad count.
        self.window = WindowedRate(window_s)
        self.firing = False


class _SLOState:
    __slots__ = ("slo", "rules", "good", "bad")

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        self.rules = [
            _RuleState(rule, rule.window_s if rule.window_s > 0 else slo.window_s)
            for rule in slo.rules
        ]
        self.good = 0
        self.bad = 0


class SLOEngine:
    """Evaluates a set of SLOs online, as spans finish (a SpanSink).

    Subscribe via ``tracer.subscribe(engine)``. Alert transitions
    accumulate in :attr:`alerts` (creation order == sim-event order);
    :meth:`on_breach` callbacks run synchronously on every "fire"
    transition -- the flight-recorder trigger seam.
    """

    def __init__(self, slos: list[SLO] | tuple[SLO, ...]) -> None:
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self._by_span: dict[str, list[_SLOState]] = {}
        self._states: list[_SLOState] = []
        for slo in slos:
            state = _SLOState(slo)
            self._states.append(state)
            self._by_span.setdefault(slo.span_name, []).append(state)
        self.alerts: list[Alert] = []
        self._breach_hooks: list[Callable[[Alert], None]] = []

    def on_breach(self, hook: Callable[[Alert], None]) -> Callable[[Alert], None]:
        """Run ``hook(alert)`` synchronously on every "fire" transition."""
        self._breach_hooks.append(hook)
        return hook

    # -- sink protocol ------------------------------------------------------------

    def on_span(self, span: Span) -> None:
        states = self._by_span.get(span.name)
        if not states:
            return
        t = span.end_sim if span.end_sim is not None else span.start_sim
        for state in states:
            bad = state.slo.is_bad(span)
            if bad:
                state.bad += 1
            else:
                state.good += 1
            for rule_state in state.rules:
                rule_state.window.observe(t, 1.0 if bad else 0.0)
                self._evaluate(state, rule_state, t)

    def _evaluate(self, state: _SLOState, rs: _RuleState, t: float) -> None:
        total = rs.window.events(t)
        if total < rs.rule.min_events:
            return
        bad = rs.window.value_sum(t)
        burn = (bad / total) / state.slo.budget
        if burn >= rs.rule.factor and not rs.firing:
            rs.firing = True
            self._transition(state, rs, t, "fire", burn, int(bad), total)
        elif burn < rs.rule.factor and rs.firing:
            rs.firing = False
            self._transition(state, rs, t, "resolve", burn, int(bad), total)

    def _transition(
        self, state: _SLOState, rs: _RuleState, t: float,
        event: str, burn: float, bad: int, total: int,
    ) -> None:
        alert = Alert(
            t=t, slo=state.slo.name, rule=rs.rule.name, event=event,
            burn=burn, bad=bad, total=total,
        )
        self.alerts.append(alert)
        if event == "fire":
            for hook in self._breach_hooks:
                hook(alert)

    # -- queries -----------------------------------------------------------------

    def firing(self) -> list[tuple[str, str]]:
        """Currently-firing (slo, rule) pairs, in spec order."""
        return [
            (state.slo.name, rs.rule.name)
            for state in self._states
            for rs in state.rules
            if rs.firing
        ]

    def timeline(self) -> list[dict[str, Any]]:
        """Every alert transition, in sim-event order (deterministic)."""
        return [alert.to_dict() for alert in self.alerts]

    def timeline_json(self) -> str:
        """Canonical JSON timeline: byte-identical across same-seed runs."""
        return json.dumps(self.timeline(), sort_keys=True, separators=(",", ":"))

    def table(self) -> list[str]:
        """Human-readable live status: per-SLO compliance and burn state."""
        lines = [
            "== SLO status ==",
            f"{'slo':<28} {'objective':>10} {'good':>8} {'bad':>6} "
            f"{'compliance':>11} {'alerts':>7} {'state':>8}",
        ]
        for state in self._states:
            total = state.good + state.bad
            compliance = state.good / total if total else 1.0
            n_alerts = sum(
                1 for a in self.alerts
                if a.slo == state.slo.name and a.event == "fire"
            )
            firing = [rs.rule.name for rs in state.rules if rs.firing]
            lines.append(
                f"{state.slo.name:<28} {state.slo.objective_s:>9.3g}s "
                f"{state.good:>8} {state.bad:>6} {compliance:>10.2%} "
                f"{n_alerts:>7} {('FIRING:' + ','.join(firing)) if firing else 'ok':>8}"
            )
        return lines

    def summary(self) -> dict[str, Any]:
        """Deterministic per-SLO roll-up, JSON-ready."""
        out: dict[str, Any] = {}
        for state in self._states:
            total = state.good + state.bad
            out[state.slo.name] = {
                "objective_s": state.slo.objective_s,
                "window_s": state.slo.window_s,
                "budget": state.slo.budget,
                "good": state.good,
                "bad": state.bad,
                "compliance": state.good / total if total else 1.0,
                "fires": sum(
                    1 for a in self.alerts
                    if a.slo == state.slo.name and a.event == "fire"
                ),
            }
        return out


def budget_record(
    *,
    t: float,
    shard: int,
    seq: int,
    slo: str,
    value_s: float,
    budget_s: float,
    **attrs: Any,
) -> dict[str, Any]:
    """One mergeable SLO-timeline record, keyed ``(t, shard, seq)``.

    The sharded-fabric counterpart of :meth:`SLOEngine.timeline`: each
    shard evaluates its own latency observations against the budget and
    emits records carrying the merge layer's total-order key, so
    :func:`repro.parallel.merge.merge_slo_timelines` reproduces one
    worker-count-invariant timeline (every field is a pure function of
    the observation, never of the worker layout).
    """
    if budget_s <= 0:
        raise ValueError(f"budget_s must be positive: {budget_s}")
    return {
        "t": t,
        "shard": shard,
        "seq": seq,
        "kind": "slo.eval",
        "slo": slo,
        "value_s": value_s,
        "budget_s": budget_s,
        "ok": value_s <= budget_s,
        **attrs,
    }


__all__ = [
    "Alert",
    "BurnRateRule",
    "SLO",
    "SLOEngine",
    "FAST_BURN_FACTOR",
    "FAST_BURN_WINDOW_S",
    "SLOW_BURN_FACTOR",
    "budget_record",
]
