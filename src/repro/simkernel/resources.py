"""Capacity-limited resources and message stores."""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from typing import TYPE_CHECKING, Any, Optional

from repro.simkernel.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.engine import Engine


class Resource:
    """A counted resource with FIFO waiters (e.g. compute cores, RF chains).

    ``request(n)`` returns an event that triggers once ``n`` units are
    granted; ``release(n)`` returns them. Grants are FIFO -- a large request
    at the head of the queue blocks later small ones (no starvation).
    """

    def __init__(self, engine: "Engine", capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: deque[tuple[Event, int]] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def request(self, amount: int = 1) -> Event:
        """Request ``amount`` units; the returned event triggers on grant."""
        if amount <= 0 or amount > self.capacity:
            raise ValueError(
                f"request of {amount} units from capacity-{self.capacity} resource"
            )
        ev = Event(self.engine)
        self._waiters.append((ev, amount))
        self._drain()
        return ev

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units to the pool."""
        if amount <= 0 or amount > self._in_use:
            raise ValueError(
                f"release of {amount} units with {self._in_use} in use"
            )
        self._in_use -= amount
        self._drain()

    def _drain(self) -> None:
        while self._waiters:
            ev, amount = self._waiters[0]
            if ev.triggered or ev._abandoned:  # cancelled / interrupted away
                self._waiters.popleft()
                continue
            if self._in_use + amount > self.capacity:
                break
            self._waiters.popleft()
            self._in_use += amount
            ev.succeed(amount)


class Store:
    """Unbounded FIFO store of items; ``get`` waits until an item exists."""

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest live waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered and not getter._abandoned:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next available item."""
        ev = Event(self.engine)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None if empty."""
        return self._items.popleft() if self._items else None


class PriorityStore(Store):
    """Store that hands out the lowest-priority item first.

    Items are ``(priority, payload)`` pairs; ties break FIFO.
    """

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine)
        self._heap: list[tuple[Any, int, Any]] = []
        self._seq = count()

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: Any) -> None:
        try:
            priority, payload = item
        except (TypeError, ValueError):
            raise TypeError(
                "PriorityStore items must be (priority, payload) pairs"
            ) from None
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered and not getter._abandoned:
                if self._heap:
                    # Respect ordering: insert then pop the minimum.
                    heappush(self._heap, (priority, next(self._seq), payload))
                    p, _, best = heappop(self._heap)
                    getter.succeed((p, best))
                else:
                    getter.succeed((priority, payload))
                return
        heappush(self._heap, (priority, next(self._seq), payload))

    def get(self) -> Event:
        ev = Event(self.engine)
        if self._heap:
            priority, _, payload = heappop(self._heap)
            ev.succeed((priority, payload))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        if not self._heap:
            return None
        priority, _, payload = heappop(self._heap)
        return (priority, payload)
