"""Deterministic discrete-event simulation kernel.

Every other ``repro`` subsystem -- the private 5G radio network, the CSPOT
distributed runtime, the HPC batch scheduler, and the end-to-end xGFabric
pipeline -- runs on top of this kernel so that whole-system experiments are
reproducible from a single seed.

The kernel provides:

* :class:`~repro.simkernel.engine.Engine` -- a heap-based event loop with a
  monotonic simulated clock.
* :class:`~repro.simkernel.process.Process` -- generator-based cooperative
  processes (``yield Timeout(dt)`` / ``yield event``).
* :class:`~repro.simkernel.resources.Resource`,
  :class:`~repro.simkernel.resources.Store` -- capacity-limited resources and
  FIFO message stores for producer/consumer coupling.
* :class:`~repro.simkernel.rng.RngRegistry` -- named, independently seeded
  ``numpy.random.Generator`` streams so adding a new random consumer does not
  perturb existing ones.
"""

from repro.simkernel.engine import Engine, SimulationError
from repro.simkernel.events import Event, Timeout, AnyOf, AllOf, Interrupt
from repro.simkernel.process import Process, ProcessDied
from repro.simkernel.resources import Resource, Store, PriorityStore
from repro.simkernel.rng import RngRegistry

__all__ = [
    "Engine",
    "SimulationError",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Process",
    "ProcessDied",
    "Resource",
    "Store",
    "PriorityStore",
    "RngRegistry",
]
