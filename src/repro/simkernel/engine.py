"""The discrete-event engine: clock, event queue, run loop.

The event queue is a *calendar* of per-timestamp buckets rather than one
flat binary heap: a min-heap orders the distinct pending timestamps, and
each timestamp owns a FIFO deque of ``(eid, event)`` pairs. Scheduling an
event at an already-pending timestamp is an O(1) append instead of an
O(log n) ``heappush``, so same-timestamp event storms (every cell sampling
on the same tick, a chaos campaign firing a burst) cost amortized O(1) per
event. Because event ids are assigned monotonically and appends preserve
arrival order, draining a bucket front-to-back reproduces the exact
``(time, eid)`` order the flat heap produced -- the deterministic FIFO
tie-break is byte-for-byte unchanged (property-tested against a heapq
reference model in ``tests/simkernel/test_engine_batched.py``).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from itertools import count
from typing import Any, Callable, Iterable, Iterator, Optional

import numpy as np

from repro.simkernel.events import AllOf, AnyOf, Event, Timeout
from repro.simkernel.process import Process, ProcessBody
from repro.simkernel.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised for engine-level errors (time going backwards, empty run...)."""


class Engine:
    """A deterministic discrete-event simulation engine.

    Events scheduled at the same simulated time are processed in scheduling
    order (FIFO tie-break via a monotonically increasing sequence number), so
    two runs with the same seed produce identical traces.

    Parameters
    ----------
    seed:
        Master seed for the engine's :class:`RngRegistry`. Subsystems draw
        named child streams (``engine.rng("radio.channel")``) so randomness
        is stable under composition.
    start_time:
        Initial value of the simulated clock, in seconds.
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        #: Min-heap of the *distinct* timestamps that currently have a
        #: non-empty bucket; each timestamp appears exactly once.
        self._times: list[float] = []
        #: Per-timestamp FIFO buckets; deque order == eid order because
        #: eids are monotonic and appends preserve arrival order.
        self._buckets: dict[float, deque[tuple[int, Event]]] = {}
        self._n_pending = 0
        self._eid: Iterator[int] = count()
        self.rngs = RngRegistry(seed)
        self._trace_hooks: list[Callable[[float, Event], None]] = []

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- rng ------------------------------------------------------------------

    def rng(self, name: str) -> np.random.Generator:
        """Return the named, independently seeded random generator."""
        return self.rngs.get(name)

    # -- event construction ----------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, generator: ProcessBody, name: Optional[str] = None) -> Process:
        """Start a cooperative process from a generator."""
        return Process(self, generator, name=name)

    # -- scheduling --------------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        when = self._now + delay
        if math.isnan(when):
            raise SimulationError(f"cannot schedule at NaN time (delay={delay})")
        bucket = self._buckets.get(when)
        if bucket is None:
            # First event at this timestamp: one heap push per distinct time.
            bucket = self._buckets[when] = deque()
            heapq.heappush(self._times, when)
        bucket.append((next(self._eid), event))
        self._n_pending += 1

    def __len__(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return self._n_pending

    def schedule_at(self, when: float, value: Any = None) -> Event:
        """Create an event that triggers at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        return Timeout(self, when - self._now, value)

    def add_trace_hook(self, hook: Callable[[float, Event], None]) -> None:
        """Register a hook invoked as ``hook(now, event)`` on each processed event."""
        self._trace_hooks.append(hook)

    # -- run loop -----------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        if not self._times:
            raise SimulationError("step() on an empty event queue")
        when = self._times[0]
        bucket = self._buckets[when]
        _, event = bucket.popleft()
        self._n_pending -= 1
        if not bucket:
            # Drained: retire the timestamp before callbacks run, so a
            # callback re-scheduling at this same instant opens a fresh
            # bucket (and re-pushes the timestamp) instead of racing us.
            del self._buckets[when]
            heapq.heappop(self._times)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for hook in self._trace_hooks:
            hook(when, event)
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if not event.ok and not getattr(event, "_defused", False):
            # An unfailed-unwaited event would silently swallow errors.
            raise event.value

    def step_batch(self) -> int:
        """Process *all* events at the next pending timestamp.

        Includes events that those callbacks schedule at the same instant
        (they join the tail of the batch in eid order, exactly as the
        one-at-a-time loop would process them). Returns the number of
        events processed.
        """
        if not self._times:
            raise SimulationError("step_batch() on an empty event queue")
        when = self._times[0]
        n = 0
        while self._times and self._times[0] <= when:
            self.step()
            n += 1
        return n

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._times[0] if self._times else float("inf")

    def drain_window(self, until: float) -> int:
        """Process every event with ``time <= until``, then pin the clock.

        This is the shard-side half of the conservative window-barrier
        protocol in :mod:`repro.parallel`: a shard-local engine advances
        exactly to the barrier time -- including events that processed
        events schedule inside the window -- and reports how many events
        it drained, so the coordinator can account for the window before
        releasing the next one. Unlike :meth:`run`, the event count is
        returned (``run(until=...)`` returns ``None``).
        """
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"drain_window until {horizon} is in the past ({self._now})"
            )
        n = 0
        while self._times and self._times[0] <= horizon:
            self.step()
            n += 1
        self._now = horizon
        return n

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` -- run until the event queue drains;
            a float -- run until the clock reaches that time;
            an :class:`Event` -- run until that event is processed, returning
            its value (or raising its exception).
        """
        if until is None:
            while self._times:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            done: list[Any] = []

            def _mark(ev: Event) -> None:
                done.append(ev)
                ev._defused = True  # type: ignore[attr-defined]

            sentinel.add_callback(_mark)
            while not done:
                if not self._times:
                    raise SimulationError(
                        "event queue drained before the awaited event triggered"
                    )
                self.step()
            if sentinel.ok:
                return sentinel.value
            raise sentinel.value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"run until {horizon} is in the past ({self._now})")
        while self._times and self._times[0] <= horizon:
            self.step()
        self._now = horizon
        return None
