"""The discrete-event engine: clock, event queue, run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Iterable, Iterator, Optional

import numpy as np

from repro.simkernel.events import AllOf, AnyOf, Event, Timeout
from repro.simkernel.process import Process, ProcessBody
from repro.simkernel.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised for engine-level errors (time going backwards, empty run...)."""


class Engine:
    """A deterministic discrete-event simulation engine.

    Events scheduled at the same simulated time are processed in scheduling
    order (FIFO tie-break via a monotonically increasing sequence number), so
    two runs with the same seed produce identical traces.

    Parameters
    ----------
    seed:
        Master seed for the engine's :class:`RngRegistry`. Subsystems draw
        named child streams (``engine.rng("radio.channel")``) so randomness
        is stable under composition.
    start_time:
        Initial value of the simulated clock, in seconds.
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid: Iterator[int] = count()
        self.rngs = RngRegistry(seed)
        self._trace_hooks: list[Callable[[float, Event], None]] = []

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- rng ------------------------------------------------------------------

    def rng(self, name: str) -> np.random.Generator:
        """Return the named, independently seeded random generator."""
        return self.rngs.get(name)

    # -- event construction ----------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, generator: ProcessBody, name: Optional[str] = None) -> Process:
        """Start a cooperative process from a generator."""
        return Process(self, generator, name=name)

    # -- scheduling --------------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, next(self._eid), event))

    def schedule_at(self, when: float, value: Any = None) -> Event:
        """Create an event that triggers at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        return Timeout(self, when - self._now, value)

    def add_trace_hook(self, hook: Callable[[float, Event], None]) -> None:
        """Register a hook invoked as ``hook(now, event)`` on each processed event."""
        self._trace_hooks.append(hook)

    # -- run loop -----------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for hook in self._trace_hooks:
            hook(when, event)
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if not event.ok and not getattr(event, "_defused", False):
            # An unfailed-unwaited event would silently swallow errors.
            raise event.value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` -- run until the event queue drains;
            a float -- run until the clock reaches that time;
            an :class:`Event` -- run until that event is processed, returning
            its value (or raising its exception).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            done: list[Any] = []

            def _mark(ev: Event) -> None:
                done.append(ev)
                ev._defused = True  # type: ignore[attr-defined]

            sentinel.add_callback(_mark)
            while not done:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event triggered"
                    )
                self.step()
            if sentinel.ok:
                return sentinel.value
            raise sentinel.value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"run until {horizon} is in the past ({self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
