"""Generator-based cooperative processes.

A process body is a generator that yields :class:`~repro.simkernel.events.Event`
objects; the process resumes when the yielded event triggers, receiving the
event's value at the ``yield`` expression (or having the event's exception
re-raised there).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.simkernel.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.engine import Engine

#: The shape of a process body: yields events to wait on, receives each
#: event's value back at the yield, may return anything.
ProcessBody = Generator[Event, Any, Any]


class ProcessDied(Exception):
    """Raised when interacting with a process that already terminated."""


class Process(Event):
    """A running cooperative process.

    The process itself is an :class:`Event` that triggers when the body
    returns (value = the generator's return value) or raises (failure), so
    processes can wait on each other by yielding a :class:`Process`.
    """

    __slots__ = ("name", "_generator", "_waiting_on")

    def __init__(
        self,
        engine: "Engine",
        generator: ProcessBody,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(engine)
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        self.name: str = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once at the current time.
        boot = Event(engine)
        boot.add_callback(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its current yield."""
        if self.triggered:
            raise ProcessDied(f"cannot interrupt finished process {self.name!r}")
        engine = self.engine

        def _deliver(_: Event) -> None:
            if self.triggered:
                return
            target = self._waiting_on
            if target is not None and not target.processed:
                # Detach: the interrupted process no longer waits on it,
                # and grant-style providers (resources, stores) must skip it.
                try:
                    target.callbacks.remove(self._resume)  # type: ignore[union-attr]
                except (ValueError, AttributeError):
                    pass
                target._abandoned = True
            self._waiting_on = None
            self._step(Interrupt(cause), throw=True)

        kick = Event(engine)
        kick.add_callback(_deliver)
        kick.succeed()

    # -- internals --------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            event._defused = True  # type: ignore[attr-defined]
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                yielded = self._generator.throw(value)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(yielded, Event):
            err = RuntimeError(
                f"process {self.name!r} yielded non-event {yielded!r}"
            )
            self._generator.close()
            self.fail(err)
            return
        self._waiting_on = yielded
        yielded.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"
