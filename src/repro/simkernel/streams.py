"""The RNG stream namespace registry: every named stream, declared once.

Stream *names* are the reproduction's randomness contract: a subsystem's
draws are a function of ``(master seed, stream name)`` alone, so two
subsystems accidentally sharing a name draw *correlated* randomness, and
a stream drawn outside its owning package silently couples modules the
architecture says are independent. This module is the single source of
truth for that contract:

* Every namespace is declared as a :class:`StreamNamespace` in
  :data:`STREAM_NAMESPACES`, with its owning package and a one-line
  description. ``<placeholder>`` segments are wildcards (one dot-free
  run of characters each).
* Call sites build names only through the constants and helper
  functions below -- never ad-hoc string literals/f-strings.
* The whole-program analyzer (``python -m repro.lint --program``)
  resolves every ``engine.rng(...)`` / ``RngRegistry.get(...)`` call
  site against this table (REPRO501-504) and regenerates the committed
  registry page ``docs/rng-streams.md`` from it.

Adding a stream: declare the namespace here, add a constant or helper,
regenerate the doc (``--emit-stream-registry docs/rng-streams.md``), and
draw the stream from its owning package.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StreamNamespace:
    """One declared RNG stream namespace.

    ``pattern`` is the dotted stream name; ``<placeholder>`` marks a
    variable segment (matches one dot-free run). ``owner`` is the
    package whose *library code* may draw the stream -- tests,
    benchmarks and examples may draw anything.
    """

    pattern: str
    owner: str
    description: str


# -- sensors -----------------------------------------------------------------

#: Farm-ng robot motion/measurement noise.
SENSORS_ROBOT = "sensors.robot"
#: Synthetic weather field (diurnal wind + gusts).
SENSORS_WEATHER = "sensors.weather"
#: Per-reading instrument noise on every weather station.
SENSORS_INSTRUMENTS = "sensors.instruments"

# -- cspot -------------------------------------------------------------------

#: Transport-level latency jitter draws.
CSPOT_TRANSPORT = "cspot.transport"


def cspot_fault_stream(src: str, dst: str) -> str:
    """Fault-injector stream for the directed CSPOT path ``src -> dst``."""
    return f"cspot.faults.{src}-{dst}"


# -- chaos -------------------------------------------------------------------

#: Campaign-level fault scheduling draws.
CHAOS_CAMPAIGN = "chaos"

# -- hpc ---------------------------------------------------------------------


def hpc_background_load_stream(site_name: str) -> str:
    """Background queue-load stream for one HPC site.

    Keyed by site so co-scheduled load generators on one engine stay
    independent: adding a second site's generator must never perturb the
    first site's arrival schedule.
    """
    return f"hpc.background-load.{site_name}"


# -- cfd ---------------------------------------------------------------------

#: Sampled CFD runtime draws from the calibrated performance model.
CFD_RUNTIME = "cfd.runtime"

# -- core --------------------------------------------------------------------

#: ScaleScenario's single-process radio sampling stream.
SCALE_RADIO = "scale.radio"

# -- radio populations -------------------------------------------------------

#: Default stream prefix for single-process population realization.
POPULATION_PREFIX = "population"
#: Stream prefix for sharded (per-cell) population realization.
SHARD_PREFIX = "shard"


def population_stream(prefix: str, kind: str) -> str:
    """Population-level stream ``<prefix>.<kind>`` (cells/channel/gain)."""
    if not kind:
        raise ValueError("empty population stream kind")
    return f"{prefix}.{kind}"


def cell_stream(prefix: str, cell_index: int, kind: str) -> str:
    """Per-cell stream ``<prefix>.cell<ccc>.<kind>``, keyed by cell index."""
    if cell_index < 0:
        raise ValueError(f"negative cell index: {cell_index}")
    if not kind:
        raise ValueError("empty cell stream kind")
    return f"{prefix}.cell{cell_index:03d}.{kind}"


def shard_stream(cell_index: int, purpose: str) -> str:
    """Canonical per-shard RNG stream name: ``shard.cell<ccc>.<purpose>``.

    Keyed by the *cell* index -- the stable shard id -- never by the
    worker that happens to run it, so shard count never changes any
    stream's draws.
    """
    if not purpose:
        raise ValueError("empty stream purpose")
    return cell_stream(SHARD_PREFIX, cell_index, purpose)


#: The declared namespace table, in registry order. The whole-program
#: analyzer unions every ``STREAM_NAMESPACES`` it finds in the scanned
#: tree (fixture corpora declare their own), checks declared patterns
#: for overlap (REPRO501), attributes every call site to a namespace
#: (REPRO504), enforces owners (REPRO502), and reports namespaces no
#: call site draws (REPRO503).
STREAM_NAMESPACES: tuple[StreamNamespace, ...] = (
    StreamNamespace(
        pattern="chaos",
        owner="repro.chaos",
        description="Chaos campaign fault scheduling draws.",
    ),
    StreamNamespace(
        pattern="cspot.transport",
        owner="repro.cspot",
        description="CSPOT transport latency jitter.",
    ),
    StreamNamespace(
        pattern="cspot.faults.<src>-<dst>",
        owner="repro.cspot",
        description="Per-path CSPOT fault injector (drop/ack-loss draws).",
    ),
    StreamNamespace(
        pattern="sensors.robot",
        owner="repro.sensors",
        description="Farm-ng robot motion/measurement noise.",
    ),
    StreamNamespace(
        pattern="sensors.weather",
        owner="repro.sensors",
        description="Synthetic weather field (diurnal wind + gusts).",
    ),
    StreamNamespace(
        pattern="sensors.instruments",
        owner="repro.sensors",
        description="Weather-station instrument noise, shared by all stations.",
    ),
    StreamNamespace(
        pattern="hpc.background-load.<site>",
        owner="repro.hpc",
        description="Per-site synthetic batch-queue background load.",
    ),
    StreamNamespace(
        pattern="cfd.runtime",
        owner="repro.cfd",
        description="Sampled CFD runtimes from the calibrated perf model.",
    ),
    StreamNamespace(
        pattern="scale.radio",
        owner="repro.core",
        description="ScaleScenario single-process radio sampling.",
    ),
    StreamNamespace(
        pattern="population.cells",
        owner="repro.radio",
        description="UE-count draws across a declarative population's cells.",
    ),
    StreamNamespace(
        pattern="population.channel",
        owner="repro.radio",
        description="Population-level channel quality (mean CQI) draws.",
    ),
    StreamNamespace(
        pattern="population.gain",
        owner="repro.radio",
        description="Population-level link gain spread draws.",
    ),
    StreamNamespace(
        pattern="shard.cell<cell>.channel",
        owner="repro.radio",
        description="Per-cell channel realization for sharded populations.",
    ),
    StreamNamespace(
        pattern="shard.cell<cell>.gain",
        owner="repro.radio",
        description="Per-cell link-gain realization for sharded populations.",
    ),
    StreamNamespace(
        pattern="shard.cell<cell>.radio",
        owner="repro.parallel",
        description="Per-cell radio sampling on a shard runner.",
    ),
    StreamNamespace(
        pattern="shard.cell<cell>.sensors",
        owner="repro.parallel",
        description="Per-site sensor noise on a fabric shard runner.",
    ),
    StreamNamespace(
        pattern="shard.cell<cell>.transfer",
        owner="repro.parallel",
        description="Per-site CSPOT transfer latency draws on a fabric shard.",
    ),
)
