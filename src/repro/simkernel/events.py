"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot, single-assignment synchronization point:
it is *triggered* at most once, with a value (success) or an exception
(failure), and callbacks registered before triggering run when the engine
processes it. Processes wait on events by ``yield``-ing them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.engine import Engine

_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    Events follow single-assignment semantics: :meth:`succeed` or
    :meth:`fail` may be called exactly once. This mirrors the
    single-assignment discipline of CSPOT log entries that the upper layers
    rely on.
    """

    __slots__ = (
        "engine", "callbacks", "_value", "_ok", "_scheduled", "_defused",
        "_abandoned",
    )

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False
        # Set when the sole waiter was interrupted away: resources and
        # stores must not grant/deliver to an abandoned event.
        self._abandoned = False

    # -- state --------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Raises if not yet triggered."""
        if self._ok is None:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is _PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.engine._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside any process waiting on the event.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._value = exception
        self._ok = False
        self.engine._schedule(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event is processed.

        If the event was already processed the callback runs immediately --
        this keeps late waiters from deadlocking.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` units of simulated time from now."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = float(delay)
        self._value = value
        self._ok = True
        engine._schedule(self, delay=self.delay)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = tuple(events)
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.engine is not engine:
                raise ValueError("all events must belong to the same engine")
            ev.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count: a Timeout carries its value from
        # construction but has not "happened" until the engine processes it.
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when the first of ``events`` triggers.

    Fails if that first event failed.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(self._collect())
        else:
            self.fail(event.value)


class AllOf(_Condition):
    """Triggers when every one of ``events`` has triggered successfully.

    Fails on the first failing constituent.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())
