"""Named, independently seeded random-number streams.

Reproducibility discipline: every stochastic subsystem draws from its own
named stream derived from the master seed and the stream name, so adding or
re-ordering consumers never perturbs another subsystem's draws.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master`` and a stream ``name``.

    Uses SHA-256 over the master seed and name, so the mapping is stable
    across Python versions and platforms (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{master}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Registry of named ``numpy.random.Generator`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        ``name`` must be a non-blank string: a blank stream name would
        silently alias every anonymous consumer onto one stream, which is
        exactly the cross-subsystem coupling named streams exist to
        prevent.
        """
        if not isinstance(name, str) or not name.strip():
            raise ValueError(
                f"RNG stream name must be a non-blank string, got {name!r}"
            )
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def reset(self, name: str) -> np.random.Generator:
        """Re-seed the named stream back to its initial state."""
        self._streams.pop(name, None)
        return self.get(name)

    def names(self) -> list[str]:
        """Names of all instantiated streams (sorted for determinism)."""
        return sorted(self._streams)
